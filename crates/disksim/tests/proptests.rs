//! Property tests for the disk service-time model.

use lor_disksim::{
    schedule, AccessKind, ByteRun, Disk, DiskConfig, IoRequest, SchedulingPolicy, SimDuration,
};
use proptest::prelude::*;

const TEST_CAPACITY: u64 = 4_000_000_000;

fn test_disk() -> Disk {
    Disk::new(DiskConfig::seagate_400gb_2005().scaled(TEST_CAPACITY))
}

prop_compose! {
    fn arb_run()(offset in 0u64..TEST_CAPACITY - (1 << 20), len in 1u64..(1 << 20)) -> ByteRun {
        ByteRun::new(offset, len)
    }
}

prop_compose! {
    fn arb_request()(
        kind in prop_oneof![Just(AccessKind::Read), Just(AccessKind::Write)],
        runs in prop::collection::vec(arb_run(), 1..16),
    ) -> IoRequest {
        IoRequest::new(kind, runs)
    }
}

proptest! {
    /// Service time is always positive for a non-empty request and the clock
    /// advances by exactly the reported total.
    #[test]
    fn service_time_positive_and_clock_consistent(requests in prop::collection::vec(arb_request(), 1..32)) {
        let mut disk = test_disk();
        let mut expected = SimDuration::ZERO;
        for request in &requests {
            let t = disk.service(request);
            prop_assert!(t.total() > SimDuration::ZERO);
            expected += t.total();
        }
        prop_assert_eq!(disk.elapsed(), expected);
    }

    /// Estimation never disagrees with the first subsequent service call.
    #[test]
    fn estimate_matches_service(request in arb_request()) {
        let mut disk = test_disk();
        let estimate = disk.estimate(&request);
        let actual = disk.service(&request);
        prop_assert_eq!(estimate, actual);
    }

    /// Coalescing segments never changes the number of bytes transferred and
    /// never makes a request slower.
    #[test]
    fn coalescing_preserves_bytes_and_never_slows(request in arb_request()) {
        let disk = test_disk();
        let merged = request.coalesced();
        prop_assert_eq!(merged.total_bytes(), request.total_bytes());
        prop_assert!(disk.estimate(&merged).total() <= disk.estimate(&request).total());
    }

    /// Splitting a contiguous read into contiguous pieces costs the same as
    /// reading it whole (the model must not penalise logical chunking).
    #[test]
    fn contiguous_split_costs_the_same(
        offset in 0u64..TEST_CAPACITY / 2,
        len in 2u64..(4 << 20),
        pieces in 2usize..8,
    ) {
        let disk = test_disk();
        let whole = disk.estimate(&IoRequest::read(offset, len));
        let piece_len = len / pieces as u64;
        prop_assume!(piece_len > 0);
        let mut runs = Vec::new();
        let mut cursor = offset;
        for i in 0..pieces {
            let this = if i == pieces - 1 { offset + len - cursor } else { piece_len };
            runs.push(ByteRun::new(cursor, this));
            cursor += this;
        }
        let split = disk.estimate(&IoRequest::read_runs(runs));
        prop_assert_eq!(whole, split);
    }

    /// More fragments over the same span never gets cheaper.
    #[test]
    fn extra_scatter_never_speeds_reads(
        base in 0u64..TEST_CAPACITY / 4,
        stride in (64u64 * 1024)..(64 << 20),
        fragments in 1usize..16,
    ) {
        let disk = test_disk();
        let len_each = 64 * 1024u64;
        let build = |count: usize| {
            IoRequest::read_runs((0..count as u64).map(|i| ByteRun::new(base + i * stride, len_each)))
        };
        let fewer = disk.estimate(&build(fragments));
        let more = disk.estimate(&build(fragments + 1));
        prop_assert!(more.total() >= fewer.total());
    }

    /// Every scheduling policy emits a permutation of the input batch.
    #[test]
    fn scheduling_is_a_permutation(
        requests in prop::collection::vec(arb_request(), 0..24),
        head in 0u64..TEST_CAPACITY,
        policy in prop_oneof![
            Just(SchedulingPolicy::Fifo),
            Just(SchedulingPolicy::CLook),
            Just(SchedulingPolicy::ShortestSeekFirst)
        ],
    ) {
        let order = schedule(policy, head, &requests);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        let expected: Vec<usize> = (0..requests.len()).collect();
        prop_assert_eq!(sorted, expected);
    }

    /// Statistics account for every byte the workload asked to move.
    #[test]
    fn stats_account_for_all_bytes(requests in prop::collection::vec(arb_request(), 1..32)) {
        let mut disk = test_disk();
        let mut read_bytes = 0u64;
        let mut write_bytes = 0u64;
        for request in &requests {
            match request.kind {
                AccessKind::Read => read_bytes += request.total_bytes(),
                AccessKind::Write => write_bytes += request.total_bytes(),
            }
            disk.service(request);
        }
        prop_assert_eq!(disk.stats().reads.bytes, read_bytes);
        prop_assert_eq!(disk.stats().writes.bytes, write_bytes);
        prop_assert_eq!(disk.stats().total_requests(), requests.len() as u64);
    }
}
