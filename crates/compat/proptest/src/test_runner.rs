//! The deterministic test runner: configuration, RNG, and failure type.

use std::fmt;

/// Per-test configuration, as `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real proptest defaults to 256; 64 keeps the offline runner fast
        // while still exercising plenty of the input space.
        ProptestConfig { cases: 64 }
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// An assertion failed; the property does not hold.
    Fail(String),
    /// The inputs were rejected (e.g. by `prop_assume!`).
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// A rejection with the given message.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::Reject(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(message) => write!(f, "{message}"),
            TestCaseError::Reject(message) => write!(f, "input rejected: {message}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic random stream driving strategy generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from a test's identifier, so each property explores
    /// its own reproducible input stream.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name.
        let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: hash }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}
