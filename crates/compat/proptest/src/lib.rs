//! Offline stub of `proptest`.
//!
//! The build environment has no crate registry access, so the real proptest
//! cannot be vendored.  This stub reimplements the subset of the API the
//! workspace's property tests use — `proptest!`, `prop_compose!`,
//! `prop_oneof!`, `prop_assert*`, `Just`, `any`, ranges-as-strategies, tuple
//! strategies, `prop::collection::vec` — over a deterministic SplitMix64
//! generator seeded from the test's module path, so every run explores the
//! same (reproducible) inputs.  It does not shrink failing cases; the panic
//! message reports the case number instead.

#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Strategy-producing helpers grouped as in the real crate.
pub mod collection {
    pub use crate::strategy::vec;
}

/// Everything a property-test file needs, as in `proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, prop_oneof,
        proptest,
    };
}

/// Fails the current test case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current test case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "{} (left: `{:?}`, right: `{:?}`)",
                format!($($fmt)*),
                left,
                right
            )));
        }
    }};
}

/// Fails the current test case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Skips the current test case unless the assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Builds a strategy that picks one of several alternatives, optionally
/// weighted (`weight => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $(($weight as u32, $crate::strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $((1u32, $crate::strategy::boxed($strat))),+
        ])
    };
}

/// Defines a function returning a strategy composed from other strategies.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident ($($arg:tt)*)
        ($($var:ident in $strat:expr),+ $(,)?)
        -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($arg)*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::Strategy::prop_map(($($strat,)+), move |($($var,)+)| $body)
        }
    };
}

/// Declares property tests: each function runs its body for many generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (
        ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident ($($var:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cases = { $config }.cases;
            let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            let strategy = ($($strat,)+);
            for case in 0..cases {
                let ($($var,)+) = $crate::strategy::Strategy::generate(&strategy, &mut rng);
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(err) = outcome {
                    panic!("property failed on case {case}/{cases}: {err}");
                }
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}
