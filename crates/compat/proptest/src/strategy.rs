//! Strategies: composable descriptions of how to generate random values.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A way of generating values of an associated type from a random stream.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps the generated value through a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Coerces a concrete strategy into a boxed trait object (used by
/// [`crate::prop_oneof!`] to mix strategies of different concrete types).
pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(strategy)
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot generate from empty range");
                let span = (self.end - self.start) as u128;
                self.start + ((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot generate from empty range");
                let span = (end - start) as u128 + 1;
                start + ((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Weighted choice between boxed alternatives (see [`crate::prop_oneof!`]).
pub struct OneOf<T> {
    arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
    total_weight: u64,
}

impl<T> OneOf<T> {
    /// Creates a weighted choice; weights must not all be zero.
    pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
        let total_weight: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(
            total_weight > 0,
            "prop_oneof! needs at least one positive weight"
        );
        OneOf { arms, total_weight }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.next_u64() % self.total_weight;
        for (weight, arm) in &self.arms {
            let weight = u64::from(*weight);
            if pick < weight {
                return arm.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("weights cover the sampled value")
    }
}

/// Strategy generating the full range of a primitive type (see [`any`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(PhantomData<T>);

/// Returns the canonical strategy for a primitive type, as `proptest::arbitrary::any`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any(PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_any_int!(u8, u16, u32, u64, usize);

/// Permitted element counts for [`vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty collection size range");
        SizeRange {
            min: range.start,
            max_exclusive: range.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            min: exact,
            max_exclusive: exact + 1,
        }
    }
}

/// Strategy for vectors of values from an element strategy.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max_exclusive - self.size.min) as u64;
        let len = self.size.min + (rng.next_u64() % span.max(1)) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for vectors whose length lies in `size` (as
/// `proptest::collection::vec`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
