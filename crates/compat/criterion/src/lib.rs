//! Offline stub of `criterion`.
//!
//! The build environment has no crate registry access, so the real criterion
//! cannot be vendored.  This stub keeps every bench target compiling and
//! runnable under `cargo bench`: each benchmark runs its routine a small
//! fixed number of times and prints the mean wall-clock duration.  It does no
//! statistical analysis, outlier rejection, or HTML reporting; swap in the
//! real criterion when a registry is available to get those back.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Samples per benchmark in the stub runner (the real criterion's
/// `sample_size` is accepted but intentionally not honoured, to keep
/// `cargo bench` fast on simulation-heavy benches).
const STUB_SAMPLES: u32 = 3;

/// Top-level benchmark driver, as `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }
}

/// A named group of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub always runs a fixed number of
    /// samples.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub does not report throughput.
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark routine.
    pub fn bench_function<F>(&mut self, id: impl Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.to_string(), |bencher| routine(bencher));
        self
    }

    /// Runs one benchmark routine parameterised by an input.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.to_string(), |bencher| routine(bencher, input));
        self
    }

    /// Ends the group (no-op in the stub).
    pub fn finish(&mut self) {}

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: String, mut routine: F) {
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
            iterations: 0,
        };
        routine(&mut bencher);
        let mean = if bencher.iterations > 0 {
            bencher.elapsed / bencher.iterations
        } else {
            Duration::ZERO
        };
        println!(
            "{}/{}: {:?} per iteration ({} samples)",
            self.name, id, mean, bencher.iterations
        );
    }
}

/// Times closures handed to it by a benchmark routine.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iterations: u32,
}

impl Bencher {
    /// Runs the routine a fixed number of times, timing each run.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..STUB_SAMPLES {
            let start = Instant::now();
            let output = routine();
            self.elapsed += start.elapsed();
            self.iterations += 1;
            drop(output);
        }
    }
}

/// Identifier of a parameterised benchmark, as `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter rendering.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Throughput hint, accepted for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes moved per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Prevents the optimiser from eliding a value, as `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Declares a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($function(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point over group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
