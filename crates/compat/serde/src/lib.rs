//! Offline stub of `serde`.
//!
//! This workspace derives `Serialize`/`Deserialize` on its public types so
//! that downstream users can serialise experiment results, but nothing inside
//! the workspace calls serde at runtime.  The build environment has no crate
//! registry access, so this stub provides the two trait names and re-exports
//! the no-op derive macros from the sibling `serde_derive` stub.  Swapping in
//! the real serde later requires only a `Cargo.toml` change.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize {}
