//! Offline stub of the `rand` 0.8 API surface this workspace uses.
//!
//! The build environment has no crate registry access, so the real `rand`
//! cannot be vendored.  The workload generator and the examples only need a
//! deterministic, seedable generator with `gen_range` and a `Uniform`
//! distribution; this stub provides exactly that over SplitMix64, whose
//! statistical quality is more than adequate for the synthetic workloads and
//! the distribution-shape unit tests in `lor-core`.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniformly random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from the given range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns a uniformly random `bool`.
    fn gen_bool(&mut self, p: f64) -> bool {
        sample_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Converts 64 random bits into a `f64` in `[0, 1)`.
fn sample_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can be sampled from directly via [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u128;
                self.start + ((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end - start) as u128 + 1;
                start + ((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + sample_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// Pre-parameterised distributions, as in `rand::distributions`.
pub mod distributions {
    use super::{Rng, RngCore};

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over an inclusive integer range.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Uniform<T> {
        low: T,
        high: T,
    }

    impl Uniform<u64> {
        /// Uniform distribution over `[low, high]`.
        pub fn new_inclusive(low: u64, high: u64) -> Self {
            assert!(low <= high, "Uniform::new_inclusive called with low > high");
            Uniform { low, high }
        }
    }

    impl Distribution<u64> for Uniform<u64> {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
            let span = (self.high - self.low) as u128 + 1;
            self.low + ((RngCore::next_u64(rng) as u128 % span) as u64)
        }
    }
}

/// The generators, as in `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seedable generator (SplitMix64 under the hood, standing
    /// in for rand's `StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(10u64..=20);
            assert!((10..=20).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(0usize..=3);
            assert!(i <= 3);
        }
    }

    #[test]
    fn uniform_mean_is_roughly_centred() {
        let mut rng = StdRng::seed_from_u64(1);
        let dist = Uniform::new_inclusive(0, 1000);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| dist.sample(&mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 500.0).abs() < 10.0, "mean {mean}");
    }
}
