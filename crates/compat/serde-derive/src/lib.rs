//! Offline stub of `serde_derive`.
//!
//! The build environment for this repository has no access to a crate
//! registry, so the real `serde` cannot be vendored.  Nothing in the
//! workspace actually serialises data through serde (the `figures` binary
//! writes JSON by hand), so the derives can safely expand to nothing: the
//! `#[derive(Serialize, Deserialize)]` annotations across the workspace
//! remain in place, ready for the real serde when a registry is available.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
