//! Filesystem error type.

use std::fmt;

use lor_alloc::AllocError;

/// Errors returned by the filesystem simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// No file with the given id exists.
    NoSuchFile(u64),
    /// No file with the given name exists.
    NoSuchName(String),
    /// A file with the given name already exists.
    NameExists(String),
    /// The name is empty or otherwise unusable.
    InvalidName(String),
    /// The underlying allocator could not satisfy the request.
    Alloc(AllocError),
    /// The volume configuration is unusable (e.g. zero cluster size).
    BadConfig(&'static str),
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NoSuchFile(id) => write!(f, "no file with id {id}"),
            FsError::NoSuchName(name) => write!(f, "no file named {name:?}"),
            FsError::NameExists(name) => write!(f, "a file named {name:?} already exists"),
            FsError::InvalidName(name) => write!(f, "invalid file name {name:?}"),
            FsError::Alloc(err) => write!(f, "allocation failed: {err}"),
            FsError::BadConfig(what) => write!(f, "bad volume configuration: {what}"),
        }
    }
}

impl std::error::Error for FsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FsError::Alloc(err) => Some(err),
            _ => None,
        }
    }
}

impl From<AllocError> for FsError {
    fn from(err: AllocError) -> Self {
        FsError::Alloc(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let err = FsError::from(AllocError::EmptyRequest);
        assert!(err.to_string().contains("allocation failed"));
        assert!(err.source().is_some());
        assert!(FsError::NoSuchName("a".into()).source().is_none());
        assert!(FsError::NameExists("x".into())
            .to_string()
            .contains("already exists"));
    }
}
