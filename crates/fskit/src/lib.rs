//! # lor-fskit — an NTFS-like filesystem simulator
//!
//! One of the two storage substrates measured by the CIDR 2007 paper is NTFS
//! holding one file per application object, updated with safe writes.  This
//! crate reproduces the allocation behaviour the paper attributes to NTFS,
//! without reproducing NTFS itself:
//!
//! * extent-based files whose space is allocated **as data is appended**, in
//!   write-request-sized chunks, before the final size is known;
//! * a run-cache allocation policy that prefers the outer band and large free
//!   runs, extends detected sequential appends, and fragments files only as a
//!   last resort;
//! * deletion that defers reuse of freed space until the transaction log
//!   commits ([`Volume::checkpoint`]);
//! * safe writes (temporary file + atomic replace), the update protocol the
//!   paper's workload uses;
//! * an online per-file [`Defragmenter`] and a pathological-fragmentation
//!   injector ([`shatter`]) for the §5.3 control experiment;
//! * the paper's proposed interface extension — declaring an object's final
//!   size at creation ([`Volume::write_file_preallocated`]).
//!
//! ## Example
//!
//! ```
//! use lor_fskit::{Volume, VolumeConfig};
//!
//! let mut volume = Volume::format(VolumeConfig::new(256 << 20)).unwrap();
//! let receipt = volume.write_file("photo-0001.jpg", 1 << 20, 64 << 10).unwrap();
//!
//! // On a clean volume sequential appends stay contiguous.
//! assert_eq!(volume.file(receipt.file_id).unwrap().fragment_count(), 1);
//!
//! // Overwrite it atomically, as the paper's workload does.
//! volume.safe_write("photo-0001.jpg", 1 << 20, 64 << 10).unwrap();
//! assert_eq!(volume.file_count(), 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod defrag;
mod error;
mod file;
mod fragmenter;
mod volume;

pub use defrag::{DefragCursor, DefragReport, Defragmenter};
pub use error::FsError;
pub use file::{FileId, FileRecord};
pub use fragmenter::{shatter, ShatterReport};
pub use volume::{Volume, VolumeConfig, VolumeStats, WriteReceipt};
