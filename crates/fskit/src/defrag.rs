//! Online defragmentation.
//!
//! The paper notes (Sections 5.3 and 6) that the Windows defragmenter supports
//! on-line partial defragmentation and that defragmentation "imposes
//! read/write performance impacts that can outweigh its benefits".  This
//! module provides a per-file defragmenter so experiments can quantify both
//! sides: the fragments removed and the bytes that had to be copied to remove
//! them.
//!
//! Two driving modes are offered:
//!
//! * [`Defragmenter::defragment_volume`] — the offline whole-volume pass;
//! * [`Defragmenter::defragment_step`] — the same pass carved into bounded
//!   increments via a [`DefragCursor`], so a background maintenance scheduler
//!   (`lor-maint`) can interleave a few pages of defragmentation with the
//!   foreground workload each tick.  Driving steps to completion visits the
//!   same files in the same order as one unlimited volume pass and therefore
//!   converges to the identical layout.

use std::collections::VecDeque;

use lor_alloc::{AllocRequest, Allocator, Contiguity, PlacementConsumer};
use serde::{Deserialize, Serialize};

use crate::error::FsError;
use crate::file::FileId;
use crate::volume::Volume;

/// Outcome of a defragmentation pass.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DefragReport {
    /// Files examined.
    pub files_examined: u64,
    /// Files successfully made contiguous (or less fragmented).
    pub files_moved: u64,
    /// Files skipped because no sufficiently large free run existed.
    pub files_skipped: u64,
    /// Bytes copied while moving file data.
    pub bytes_copied: u64,
    /// Fragments before the pass, summed over examined files.
    pub fragments_before: u64,
    /// Fragments after the pass, summed over examined files.
    pub fragments_after: u64,
}

/// Resumable position inside one incremental defragmentation pass.
///
/// The cursor snapshots the candidate order (most fragmented file first, the
/// order [`Defragmenter::defragment_volume`] uses) the first time
/// [`Defragmenter::defragment_step`] is called, then remembers how far the
/// pass has progressed across steps.  Once [`DefragCursor::is_done`] reports
/// `true` the pass is complete; [`DefragCursor::reset`] starts a fresh pass
/// (with a fresh candidate snapshot) on the next step.
#[derive(Debug, Clone, Default)]
pub struct DefragCursor {
    /// Remaining candidates of the current pass; `None` before the pass has
    /// snapshotted its candidate order.
    queue: Option<VecDeque<FileId>>,
}

impl DefragCursor {
    /// Creates a cursor positioned at the start of a fresh pass.
    pub fn new() -> Self {
        DefragCursor::default()
    }

    /// `true` once the current pass has examined every candidate.
    pub fn is_done(&self) -> bool {
        self.queue.as_ref().is_some_and(VecDeque::is_empty)
    }

    /// Forgets the current pass so the next step starts a fresh one.
    pub fn reset(&mut self) {
        self.queue = None;
    }

    /// Files the current pass has still to examine (0 before the first step).
    pub fn remaining(&self) -> usize {
        self.queue.as_ref().map_or(0, VecDeque::len)
    }
}

/// The online defragmenter.
///
/// `Defragmenter` is deliberately stateless; all state lives in the volume so
/// a pass can be interrupted and resumed, as the Windows utility allows.
#[derive(Debug, Clone, Copy, Default)]
pub struct Defragmenter {
    /// Only move a file if the move makes it fully contiguous.  When `false`,
    /// a move that merely reduces the fragment count is accepted.
    pub require_full_contiguity: bool,
}

impl Defragmenter {
    /// Creates a defragmenter with default settings.
    pub fn new() -> Self {
        Defragmenter {
            require_full_contiguity: true,
        }
    }

    /// Attempts to make a single file contiguous by copying it into a fresh
    /// single-extent allocation.  Returns `Ok(true)` if the file was moved.
    ///
    /// The allocation is made as the **maintenance consumer** under the
    /// volume's [`lor_alloc::PlacementPolicy`]: a banded volume relocates
    /// into the maintenance band (refusing when that band has no run large
    /// enough, never spilling into the foreground band), and a reserve
    /// volume refuses any run longer than the largest live file's
    /// allocation.  Either way, defragmentation can only *grow* the
    /// contiguous space foreground writes see.
    pub fn defragment_file(&self, volume: &mut Volume, id: FileId) -> Result<bool, FsError> {
        let (old_extents, clusters, size_bytes) = {
            let record = volume.file(id)?;
            (
                record.extents.clone(),
                record.allocated_clusters(),
                record.size_bytes,
            )
        };
        if clusters == 0 || old_extents.len() <= 1 {
            return Ok(false);
        }

        // Ask for a single contiguous run; if the volume cannot provide one
        // (within the placement constraint) we leave the file alone — a
        // partial improvement would also be possible, but the Windows
        // defragmenter's observable behaviour is per-file.
        let request = AllocRequest {
            clusters,
            hint: None,
            contiguity: Contiguity::Required,
        };
        let consumer = PlacementConsumer::Maintenance {
            foreground_watermark: volume.foreground_watermark(),
        };
        let new_extents = match volume.allocator_mut().allocate_as(&request, consumer) {
            Ok(extents) => extents,
            Err(_) if self.require_full_contiguity => return Ok(false),
            Err(_) => return Ok(false),
        };
        debug_assert_eq!(new_extents.len(), 1);

        // "Copy" the data (the simulator has no contents; the byte count is
        // what matters for the cost model), then swap the extent maps and
        // release the old clusters immediately — the defragmenter runs with
        // its own transaction and the space it frees is reusable at once.
        volume.replace_extents(id, new_extents)?;
        volume.allocator_mut().free(&old_extents)?;
        let _ = size_bytes;
        Ok(true)
    }

    /// Defragments every file on the volume, most fragmented first, stopping
    /// once `copy_budget_bytes` of data has been moved (0 means unlimited).
    pub fn defragment_volume(
        &self,
        volume: &mut Volume,
        copy_budget_bytes: u64,
    ) -> Result<DefragReport, FsError> {
        let mut candidates: Vec<(FileId, usize, u64)> = volume
            .iter_files()
            .map(|record| (record.id, record.fragment_count(), record.size_bytes))
            .collect();
        candidates.sort_by_key(|(_, fragments, _)| std::cmp::Reverse(*fragments));

        let mut report = DefragReport::default();
        for (id, fragments, size_bytes) in candidates {
            report.files_examined += 1;
            report.fragments_before += fragments as u64;
            if fragments <= 1 {
                report.fragments_after += fragments as u64;
                continue;
            }
            if copy_budget_bytes > 0 && report.bytes_copied + size_bytes > copy_budget_bytes {
                report.files_skipped += 1;
                report.fragments_after += fragments as u64;
                continue;
            }
            if self.defragment_file(volume, id)? {
                report.files_moved += 1;
                report.bytes_copied += size_bytes;
                report.fragments_after += volume.file(id)?.fragment_count() as u64;
            } else {
                report.files_skipped += 1;
                report.fragments_after += fragments as u64;
            }
        }
        Ok(report)
    }

    /// Runs one bounded increment of a volume pass: examines candidates in
    /// the pass order recorded in `cursor` (most fragmented first) and moves
    /// files until about `copy_budget_bytes` of data has been copied (0 means
    /// unlimited — the whole remaining pass runs in this step).
    ///
    /// Unlike [`Defragmenter::defragment_volume`]'s budget — which *skips*
    /// files it cannot afford — an exhausted step budget merely *defers* the
    /// candidate to the next step, so driving steps until
    /// [`DefragCursor::is_done`] performs the complete pass.  A candidate
    /// larger than the whole step budget is still moved (the budget is a soft
    /// target, never a starvation point).  Files deleted since the pass began
    /// are skipped silently.
    ///
    /// Total fragments across the volume never increase: every committed move
    /// leaves its file fully contiguous and touches no other file's layout.
    pub fn defragment_step(
        &self,
        volume: &mut Volume,
        cursor: &mut DefragCursor,
        copy_budget_bytes: u64,
    ) -> Result<DefragReport, FsError> {
        let queue = cursor.queue.get_or_insert_with(|| {
            let mut candidates: Vec<(FileId, usize)> = volume
                .iter_files()
                .map(|record| (record.id, record.fragment_count()))
                .collect();
            candidates.sort_by_key(|(_, fragments)| std::cmp::Reverse(*fragments));
            candidates.into_iter().map(|(id, _)| id).collect()
        });

        let mut report = DefragReport::default();
        while let Some(id) = queue.pop_front() {
            // The pass snapshot may be stale: the file can have been deleted
            // (or replaced under a new id) by foreground work since.
            let Ok(record) = volume.file(id) else {
                continue;
            };
            let fragments = record.fragment_count();
            let size_bytes = record.size_bytes;
            if fragments <= 1 {
                report.files_examined += 1;
                report.fragments_before += fragments as u64;
                report.fragments_after += fragments as u64;
                continue;
            }
            if copy_budget_bytes > 0
                && report.bytes_copied > 0
                && report.bytes_copied + size_bytes > copy_budget_bytes
            {
                queue.push_front(id);
                break;
            }
            report.files_examined += 1;
            report.fragments_before += fragments as u64;
            if self.defragment_file(volume, id)? {
                report.files_moved += 1;
                report.bytes_copied += size_bytes;
                report.fragments_after += volume.file(id)?.fragment_count() as u64;
            } else {
                report.files_skipped += 1;
                report.fragments_after += fragments as u64;
            }
            if copy_budget_bytes > 0 && report.bytes_copied >= copy_budget_bytes {
                break;
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::volume::VolumeConfig;

    const MB: u64 = 1 << 20;

    /// Builds a volume whose free space is shattered so that new files
    /// fragment badly.
    fn fragmented_volume() -> (Volume, Vec<FileId>) {
        let mut config = VolumeConfig::new(64 * MB);
        config.mft_zone_fraction = 0.0;
        config.checkpoint_interval_ops = 1;
        let mut volume = Volume::format(config).unwrap();
        let pads: Vec<FileId> = (0..256)
            .map(|i| {
                volume
                    .write_file(&format!("pad{i}"), 128 * 1024, 64 * 1024)
                    .unwrap()
                    .file_id
            })
            .collect();
        for id in pads.iter().step_by(2) {
            volume.delete(*id).unwrap();
        }
        volume.checkpoint();
        // These large files must fragment across the 128 KB holes.
        let victims: Vec<FileId> = (0..4)
            .map(|i| {
                volume
                    .write_file(&format!("victim{i}"), 2 * MB, 64 * 1024)
                    .unwrap()
                    .file_id
            })
            .collect();
        (volume, victims)
    }

    #[test]
    fn defragment_file_makes_it_contiguous() {
        let (mut volume, victims) = fragmented_volume();
        let id = victims[0];
        assert!(volume.file(id).unwrap().fragment_count() > 1);
        let moved = Defragmenter::new()
            .defragment_file(&mut volume, id)
            .unwrap();
        assert!(moved);
        assert_eq!(volume.file(id).unwrap().fragment_count(), 1);
        // Size and identity are unchanged.
        assert_eq!(volume.file(id).unwrap().size_bytes, 2 * MB);
    }

    #[test]
    fn defragmenting_a_contiguous_file_is_a_no_op() {
        let mut volume = Volume::format(VolumeConfig::new(64 * MB)).unwrap();
        let receipt = volume.write_file("a", MB, 64 * 1024).unwrap();
        let moved = Defragmenter::new()
            .defragment_file(&mut volume, receipt.file_id)
            .unwrap();
        assert!(!moved);
    }

    #[test]
    fn volume_pass_reduces_total_fragments() {
        let (mut volume, _) = fragmented_volume();
        let before = volume.fragmentation();
        let report = Defragmenter::new()
            .defragment_volume(&mut volume, 0)
            .unwrap();
        let after = volume.fragmentation();
        assert!(report.files_moved > 0);
        assert!(report.fragments_after < report.fragments_before);
        assert!(after.fragments_per_object < before.fragments_per_object);
        assert_eq!(report.files_examined as usize, volume.file_count());
        assert!(report.bytes_copied > 0);
    }

    #[test]
    fn copy_budget_limits_work_performed() {
        let (mut volume, _) = fragmented_volume();
        let report = Defragmenter::new()
            .defragment_volume(&mut volume, MB)
            .unwrap();
        // Each victim is 2 MB, so a 1 MB budget cannot move any of them.
        assert_eq!(report.files_moved, 0);
        assert!(report.bytes_copied <= MB);
        assert!(report.files_skipped > 0);
    }

    #[test]
    fn incremental_steps_converge_to_the_volume_pass_layout() {
        let (mut whole, _) = fragmented_volume();
        let (mut stepped, _) = fragmented_volume();
        let defragmenter = Defragmenter::new();

        let full = defragmenter.defragment_volume(&mut whole, 0).unwrap();

        let mut cursor = DefragCursor::new();
        let mut steps = 0;
        let mut total_copied = 0;
        let mut previous_fragments = stepped.fragmentation().total_fragments;
        while !cursor.is_done() {
            let report = defragmenter
                .defragment_step(&mut stepped, &mut cursor, 256 * 1024)
                .unwrap();
            total_copied += report.bytes_copied;
            let now = stepped.fragmentation().total_fragments;
            assert!(now <= previous_fragments, "a step may never add fragments");
            previous_fragments = now;
            steps += 1;
            assert!(steps < 10_000, "steps must terminate");
        }
        assert!(steps > 1, "a 256 KB budget must take several steps");
        assert_eq!(total_copied, full.bytes_copied);

        // The incremental pass ends in exactly the layout of the whole pass.
        let whole_layouts: Vec<_> = whole.iter_files().map(|f| f.extents.clone()).collect();
        let stepped_layouts: Vec<_> = stepped.iter_files().map(|f| f.extents.clone()).collect();
        assert_eq!(whole_layouts, stepped_layouts);
    }

    #[test]
    fn step_budget_defers_rather_than_skips() {
        let (mut volume, _) = fragmented_volume();
        let defragmenter = Defragmenter::new();
        let mut cursor = DefragCursor::new();
        // Budget smaller than any victim: the first step still moves one file
        // (the budget is a soft target), the rest wait for later steps.
        let report = defragmenter
            .defragment_step(&mut volume, &mut cursor, 1024)
            .unwrap();
        assert_eq!(report.files_moved, 1);
        assert!(!cursor.is_done());
        assert!(cursor.remaining() > 0);
    }

    #[test]
    fn cursor_reset_starts_a_fresh_pass() {
        let (mut volume, _) = fragmented_volume();
        let defragmenter = Defragmenter::new();
        let mut cursor = DefragCursor::new();
        while !cursor.is_done() {
            defragmenter
                .defragment_step(&mut volume, &mut cursor, 0)
                .unwrap();
        }
        cursor.reset();
        assert!(!cursor.is_done());
        // A fresh pass over the defragmented volume examines everything and
        // moves nothing.
        let report = defragmenter
            .defragment_step(&mut volume, &mut cursor, 0)
            .unwrap();
        assert!(cursor.is_done());
        assert_eq!(report.files_moved, 0);
        assert_eq!(report.files_examined as usize, volume.file_count());
    }

    #[test]
    fn missing_file_is_an_error() {
        let mut volume = Volume::format(VolumeConfig::new(16 * MB)).unwrap();
        assert!(Defragmenter::new()
            .defragment_file(&mut volume, FileId(99))
            .is_err());
    }

    use lor_alloc::{Extent, FreeSpace, PlacementPolicy};

    /// Builds the [`fragmented_volume`] fixture under an explicit placement.
    fn fragmented_volume_placed(placement: PlacementPolicy) -> (Volume, Vec<FileId>) {
        let mut config = VolumeConfig::new(64 * MB);
        config.mft_zone_fraction = 0.0;
        config.checkpoint_interval_ops = 1;
        config.placement = placement;
        let mut volume = Volume::format(config).unwrap();
        let pads: Vec<FileId> = (0..256)
            .map(|i| {
                volume
                    .write_file(&format!("pad{i}"), 128 * 1024, 64 * 1024)
                    .unwrap()
                    .file_id
            })
            .collect();
        for id in pads.iter().step_by(2) {
            volume.delete(*id).unwrap();
        }
        volume.checkpoint();
        let victims: Vec<FileId> = (0..4)
            .map(|i| {
                volume
                    .write_file(&format!("victim{i}"), 2 * MB, 64 * 1024)
                    .unwrap()
                    .file_id
            })
            .collect();
        (volume, victims)
    }

    #[test]
    fn banded_defrag_relocates_into_the_maintenance_band() {
        let placement = PlacementPolicy::banded(0.75);
        let (mut volume, victims) = fragmented_volume_placed(placement);
        let boundary = placement.boundary_cluster(volume.config().total_clusters());
        let foreground_largest_before = volume
            .free_space()
            .largest_run_in(0, boundary)
            .map_or(0, |run| run.len);

        let report = Defragmenter::new()
            .defragment_volume(&mut volume, 0)
            .unwrap();
        assert!(report.files_moved > 0);
        for id in victims {
            let record = volume.file(id).unwrap();
            if record.fragment_count() == 1 {
                assert!(
                    record.extents[0].start >= boundary,
                    "moved file must land in the maintenance band, got {:?}",
                    record.extents[0]
                );
            }
        }
        // Relocation only reserves in the high band and frees the victims'
        // old extents, so the foreground band's largest free run can only
        // have grown.
        let foreground_largest_after = volume
            .free_space()
            .largest_run_in(0, boundary)
            .map_or(0, |run| run.len);
        assert!(
            foreground_largest_after >= foreground_largest_before,
            "defrag must not shrink the foreground band's largest run \
             ({foreground_largest_before} -> {foreground_largest_after})"
        );
    }

    #[test]
    fn banded_defrag_falls_back_gracefully_when_the_band_is_full() {
        let placement = PlacementPolicy::banded(0.75);
        let (mut volume, _) = fragmented_volume_placed(placement);
        let total = volume.config().total_clusters();
        let boundary = placement.boundary_cluster(total);
        // Occupy the maintenance band completely (100% band occupancy).
        for run in volume.free_space().runs_in(0, total) {
            let start = run.start.max(boundary);
            if run.end() > start {
                let pin = Extent::new(start, run.end() - start);
                volume.allocator_mut().reserve_exact(pin).unwrap();
            }
        }
        assert_eq!(volume.free_space().largest_run_in(boundary, total), None);

        let before: Vec<_> = volume.iter_files().map(|f| f.extents.clone()).collect();
        let foreground_runs = volume.free_space().runs_in(0, boundary);
        // The pass terminates, moves nothing (no deadlock, no spill into the
        // foreground band), and leaves every layout and foreground run
        // untouched.
        let report = Defragmenter::new()
            .defragment_volume(&mut volume, 0)
            .unwrap();
        assert_eq!(report.files_moved, 0);
        assert!(report.files_skipped > 0, "fragmented files are deferred");
        let after: Vec<_> = volume.iter_files().map(|f| f.extents.clone()).collect();
        assert_eq!(before, after);
        assert_eq!(volume.free_space().runs_in(0, boundary), foreground_runs);
    }

    #[test]
    fn reserve_defrag_leaves_runs_above_the_watermark_untouched() {
        let (mut volume, _) = fragmented_volume_placed(PlacementPolicy::Reserve);
        let watermark = volume.foreground_watermark();
        assert!(watermark > 0);
        let big_runs: Vec<Extent> = volume
            .free_space()
            .free_runs()
            .into_iter()
            .filter(|run| run.len > watermark)
            .collect();
        assert!(
            !big_runs.is_empty(),
            "fixture must have a run above the watermark for the test to bite"
        );

        let report = Defragmenter::new()
            .defragment_volume(&mut volume, 0)
            .unwrap();
        // Every run above the watermark is still (at least) free: maintenance
        // may not consume it, and frees can only enlarge it.
        for run in big_runs {
            assert!(
                volume.free_space().is_free(run),
                "run {run:?} above the watermark must survive the pass"
            );
        }
        // A 100%-eligible-space-exhausted pass still terminates cleanly.
        let _ = report;
        let again = Defragmenter::new()
            .defragment_volume(&mut volume, 0)
            .unwrap();
        assert!(again.files_examined as usize == volume.file_count());
    }

    /// Oracle: under [`PlacementPolicy::Unrestricted`] the placement-aware
    /// defragmenter reproduces the pre-placement pass bit-identically.  The
    /// replica below is the PR 4 `defragment_file` loop — a plain foreground
    /// `allocate` of one contiguous run per candidate, most fragmented first.
    #[test]
    fn unrestricted_defrag_is_bit_identical_to_the_legacy_pass() {
        use lor_alloc::{AllocRequest, Allocator, Contiguity};

        let (mut new_path, _) = fragmented_volume();
        let (mut legacy, _) = fragmented_volume();

        let report = Defragmenter::new()
            .defragment_volume(&mut new_path, 0)
            .unwrap();
        assert!(report.files_moved > 0, "fixture must exercise real moves");

        let mut candidates: Vec<(FileId, usize)> = legacy
            .iter_files()
            .map(|record| (record.id, record.fragment_count()))
            .collect();
        candidates.sort_by_key(|(_, fragments)| std::cmp::Reverse(*fragments));
        for (id, fragments) in candidates {
            if fragments <= 1 {
                continue;
            }
            let (old_extents, clusters) = {
                let record = legacy.file(id).unwrap();
                (record.extents.clone(), record.allocated_clusters())
            };
            let request = AllocRequest {
                clusters,
                hint: None,
                contiguity: Contiguity::Required,
            };
            let Ok(new_extents) = legacy.allocator_mut().allocate(&request) else {
                continue;
            };
            legacy.file_mut(id).unwrap().extents = new_extents;
            legacy.allocator_mut().free(&old_extents).unwrap();
        }

        let new_layouts: Vec<_> = new_path.iter_files().map(|f| f.extents.clone()).collect();
        let legacy_layouts: Vec<_> = legacy.iter_files().map(|f| f.extents.clone()).collect();
        assert_eq!(new_layouts, legacy_layouts);
        assert_eq!(
            new_path.free_space().free_runs(),
            legacy.free_space().free_runs()
        );
    }
}
