//! Online defragmentation.
//!
//! The paper notes (Sections 5.3 and 6) that the Windows defragmenter supports
//! on-line partial defragmentation and that defragmentation "imposes
//! read/write performance impacts that can outweigh its benefits".  This
//! module provides a per-file defragmenter so experiments can quantify both
//! sides: the fragments removed and the bytes that had to be copied to remove
//! them.

use lor_alloc::{AllocRequest, Allocator, Contiguity};
use serde::{Deserialize, Serialize};

use crate::error::FsError;
use crate::file::FileId;
use crate::volume::Volume;

/// Outcome of a defragmentation pass.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DefragReport {
    /// Files examined.
    pub files_examined: u64,
    /// Files successfully made contiguous (or less fragmented).
    pub files_moved: u64,
    /// Files skipped because no sufficiently large free run existed.
    pub files_skipped: u64,
    /// Bytes copied while moving file data.
    pub bytes_copied: u64,
    /// Fragments before the pass, summed over examined files.
    pub fragments_before: u64,
    /// Fragments after the pass, summed over examined files.
    pub fragments_after: u64,
}

/// The online defragmenter.
///
/// `Defragmenter` is deliberately stateless; all state lives in the volume so
/// a pass can be interrupted and resumed, as the Windows utility allows.
#[derive(Debug, Clone, Copy, Default)]
pub struct Defragmenter {
    /// Only move a file if the move makes it fully contiguous.  When `false`,
    /// a move that merely reduces the fragment count is accepted.
    pub require_full_contiguity: bool,
}

impl Defragmenter {
    /// Creates a defragmenter with default settings.
    pub fn new() -> Self {
        Defragmenter {
            require_full_contiguity: true,
        }
    }

    /// Attempts to make a single file contiguous by copying it into a fresh
    /// single-extent allocation.  Returns `Ok(true)` if the file was moved.
    pub fn defragment_file(&self, volume: &mut Volume, id: FileId) -> Result<bool, FsError> {
        let (old_extents, clusters, size_bytes) = {
            let record = volume.file(id)?;
            (
                record.extents.clone(),
                record.allocated_clusters(),
                record.size_bytes,
            )
        };
        if clusters == 0 || old_extents.len() <= 1 {
            return Ok(false);
        }

        // Ask for a single contiguous run; if the volume cannot provide one we
        // leave the file alone (a partial improvement would also be possible,
        // but the Windows defragmenter's observable behaviour is per-file).
        let request = AllocRequest {
            clusters,
            hint: None,
            contiguity: Contiguity::Required,
        };
        let new_extents = match volume.allocator_mut().allocate(&request) {
            Ok(extents) => extents,
            Err(_) if self.require_full_contiguity => return Ok(false),
            Err(_) => return Ok(false),
        };
        debug_assert_eq!(new_extents.len(), 1);

        // "Copy" the data (the simulator has no contents; the byte count is
        // what matters for the cost model), then swap the extent maps and
        // release the old clusters immediately — the defragmenter runs with
        // its own transaction and the space it frees is reusable at once.
        {
            let record = volume.file_mut(id)?;
            record.extents = new_extents;
        }
        volume.allocator_mut().free(&old_extents)?;
        let _ = size_bytes;
        Ok(true)
    }

    /// Defragments every file on the volume, most fragmented first, stopping
    /// once `copy_budget_bytes` of data has been moved (0 means unlimited).
    pub fn defragment_volume(
        &self,
        volume: &mut Volume,
        copy_budget_bytes: u64,
    ) -> Result<DefragReport, FsError> {
        let mut candidates: Vec<(FileId, usize, u64)> = volume
            .iter_files()
            .map(|record| (record.id, record.fragment_count(), record.size_bytes))
            .collect();
        candidates.sort_by_key(|(_, fragments, _)| std::cmp::Reverse(*fragments));

        let mut report = DefragReport::default();
        for (id, fragments, size_bytes) in candidates {
            report.files_examined += 1;
            report.fragments_before += fragments as u64;
            if fragments <= 1 {
                report.fragments_after += fragments as u64;
                continue;
            }
            if copy_budget_bytes > 0 && report.bytes_copied + size_bytes > copy_budget_bytes {
                report.files_skipped += 1;
                report.fragments_after += fragments as u64;
                continue;
            }
            if self.defragment_file(volume, id)? {
                report.files_moved += 1;
                report.bytes_copied += size_bytes;
                report.fragments_after += volume.file(id)?.fragment_count() as u64;
            } else {
                report.files_skipped += 1;
                report.fragments_after += fragments as u64;
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::volume::VolumeConfig;

    const MB: u64 = 1 << 20;

    /// Builds a volume whose free space is shattered so that new files
    /// fragment badly.
    fn fragmented_volume() -> (Volume, Vec<FileId>) {
        let mut config = VolumeConfig::new(64 * MB);
        config.mft_zone_fraction = 0.0;
        config.checkpoint_interval_ops = 1;
        let mut volume = Volume::format(config).unwrap();
        let pads: Vec<FileId> = (0..256)
            .map(|i| {
                volume
                    .write_file(&format!("pad{i}"), 128 * 1024, 64 * 1024)
                    .unwrap()
                    .file_id
            })
            .collect();
        for id in pads.iter().step_by(2) {
            volume.delete(*id).unwrap();
        }
        volume.checkpoint();
        // These large files must fragment across the 128 KB holes.
        let victims: Vec<FileId> = (0..4)
            .map(|i| {
                volume
                    .write_file(&format!("victim{i}"), 2 * MB, 64 * 1024)
                    .unwrap()
                    .file_id
            })
            .collect();
        (volume, victims)
    }

    #[test]
    fn defragment_file_makes_it_contiguous() {
        let (mut volume, victims) = fragmented_volume();
        let id = victims[0];
        assert!(volume.file(id).unwrap().fragment_count() > 1);
        let moved = Defragmenter::new()
            .defragment_file(&mut volume, id)
            .unwrap();
        assert!(moved);
        assert_eq!(volume.file(id).unwrap().fragment_count(), 1);
        // Size and identity are unchanged.
        assert_eq!(volume.file(id).unwrap().size_bytes, 2 * MB);
    }

    #[test]
    fn defragmenting_a_contiguous_file_is_a_no_op() {
        let mut volume = Volume::format(VolumeConfig::new(64 * MB)).unwrap();
        let receipt = volume.write_file("a", MB, 64 * 1024).unwrap();
        let moved = Defragmenter::new()
            .defragment_file(&mut volume, receipt.file_id)
            .unwrap();
        assert!(!moved);
    }

    #[test]
    fn volume_pass_reduces_total_fragments() {
        let (mut volume, _) = fragmented_volume();
        let before = volume.fragmentation();
        let report = Defragmenter::new()
            .defragment_volume(&mut volume, 0)
            .unwrap();
        let after = volume.fragmentation();
        assert!(report.files_moved > 0);
        assert!(report.fragments_after < report.fragments_before);
        assert!(after.fragments_per_object < before.fragments_per_object);
        assert_eq!(report.files_examined as usize, volume.file_count());
        assert!(report.bytes_copied > 0);
    }

    #[test]
    fn copy_budget_limits_work_performed() {
        let (mut volume, _) = fragmented_volume();
        let report = Defragmenter::new()
            .defragment_volume(&mut volume, MB)
            .unwrap();
        // Each victim is 2 MB, so a 1 MB budget cannot move any of them.
        assert_eq!(report.files_moved, 0);
        assert!(report.bytes_copied <= MB);
        assert!(report.files_skipped > 0);
    }

    #[test]
    fn missing_file_is_an_error() {
        let mut volume = Volume::format(VolumeConfig::new(16 * MB)).unwrap();
        assert!(Defragmenter::new()
            .defragment_file(&mut volume, FileId(99))
            .is_err());
    }
}
