//! The volume: files, free space, deferred reuse, and the write paths.
//!
//! The behaviours the paper attributes to NTFS (Section 2 and Section 5.4)
//! are modelled explicitly:
//!
//! * File data is allocated **as it is appended**, in write-request-sized
//!   chunks, *before* the final file size is known — "there is no way to pass
//!   the (known) object size to the file system at file creation".
//! * When sequential appends are detected the allocator **aggressively tries
//!   to extend** the file's last extent (the extension hint).
//! * Allocation is satisfied from a **run-based cache** of free extents that
//!   prefers the outer band and large runs, and fragments the file only as a
//!   last resort ([`lor_alloc::RunCacheAllocator`]).
//! * Space freed by deletion **cannot be reused until the transactional log
//!   commits**; the volume keeps a pending-free queue that is drained by
//!   [`Volume::checkpoint`] (called automatically every
//!   [`VolumeConfig::checkpoint_interval_ops`] operations, or when an
//!   allocation would otherwise fail).
//! * A small **MFT zone** is reserved for metadata so file data never starts
//!   at cluster zero, mirroring NTFS's banded metadata allocation.
//!
//! The volume also implements the interface extension the paper proposes
//! (Section 6): [`Volume::write_file_preallocated`] passes the final object
//! size to the allocator up front, letting experiments quantify how much
//! fragmentation that change removes.

use std::collections::BTreeMap;

use lor_alloc::{
    AllocError, AllocRequest, AllocationPolicy, Allocator, BandOccupancy, CountMultiset, Extent,
    FragmentationSummary, FragmentationTracker, FreeSpace, FreeSpaceReport, PlacementConsumer,
    PlacementPolicy, RunCacheConfig, SelectableAllocator,
};
use lor_disksim::ByteRun;
use serde::{Deserialize, Serialize};

use crate::error::FsError;
use crate::file::{FileId, FileRecord};

/// Configuration of a simulated NTFS-like volume.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VolumeConfig {
    /// Usable capacity in bytes.
    pub capacity_bytes: u64,
    /// Cluster size in bytes (NTFS default: 4 KB).
    pub cluster_size: u64,
    /// Fraction of the volume reserved for the MFT zone (metadata band).
    pub mft_zone_fraction: f64,
    /// Number of mutating operations (writes, deletes, safe writes) between
    /// automatic checkpoints that make deleted space reusable.
    ///
    /// `0` disables the interval-driven checkpoint entirely: pending-free
    /// space then accumulates until either allocation pressure forces a
    /// checkpoint or an external scheduler (the `lor-maint` background
    /// maintenance subsystem) calls [`Volume::checkpoint`] explicitly.
    pub checkpoint_interval_ops: u64,
    /// Tuning of the run-cache allocation policy.
    pub run_cache: RunCacheConfig,
    /// How the volume places file data.  [`AllocationPolicy::Native`] is the
    /// NTFS-style run cache; the fit policies exist for the cross-substrate
    /// ablation benches.
    pub allocation_policy: AllocationPolicy,
    /// Which region of free space each consumer may draw from.
    /// [`PlacementPolicy::Unrestricted`] reproduces the pre-placement
    /// behaviour bit-identically; the banded and reserve variants confine the
    /// online defragmenter so background relocation stops consuming the
    /// contiguous runs foreground writes need.
    pub placement: PlacementPolicy,
    /// Cap, in clusters, of the speculative preallocation performed for
    /// sequentially growing files (0 disables preallocation).
    ///
    /// When sequential appends are detected, NTFS aggressively allocates
    /// contiguous space ahead of the data; the excess is released when the
    /// file is closed.  The model doubles the file's allocation on each
    /// append that needs space, up to this cap, which is what keeps a file
    /// written by one stream in a handful of extents even when other writes
    /// are in flight concurrently.
    pub preallocation_cap_clusters: u64,
}

impl VolumeConfig {
    /// A volume resembling the paper's data volume: 4 KB clusters, a modest
    /// MFT zone, and deleted space becoming reusable after a handful of
    /// operations.
    pub fn new(capacity_bytes: u64) -> Self {
        VolumeConfig {
            capacity_bytes,
            cluster_size: 4096,
            mft_zone_fraction: 0.05,
            checkpoint_interval_ops: 16,
            run_cache: RunCacheConfig::default(),
            allocation_policy: AllocationPolicy::Native,
            placement: PlacementPolicy::Unrestricted,
            preallocation_cap_clusters: 2048,
        }
    }

    /// Overrides the cluster size.
    pub fn with_cluster_size(mut self, cluster_size: u64) -> Self {
        self.cluster_size = cluster_size;
        self
    }

    /// Total clusters on the volume.
    pub fn total_clusters(&self) -> u64 {
        self.capacity_bytes / self.cluster_size
    }

    /// Clusters reserved for the MFT zone.
    pub fn mft_clusters(&self) -> u64 {
        (self.total_clusters() as f64 * self.mft_zone_fraction.clamp(0.0, 0.5)).round() as u64
    }

    fn validate(&self) -> Result<(), FsError> {
        if self.cluster_size == 0 {
            return Err(FsError::BadConfig("cluster size must be non-zero"));
        }
        if self.total_clusters() == 0 {
            return Err(FsError::BadConfig("capacity must be at least one cluster"));
        }
        if !(0.0..=0.5).contains(&self.mft_zone_fraction) {
            return Err(FsError::BadConfig("MFT zone fraction must lie in [0, 0.5]"));
        }
        self.placement.validate().map_err(FsError::BadConfig)?;
        Ok(())
    }
}

/// Counters describing everything a volume has been asked to do.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VolumeStats {
    /// Files created (including temporary safe-write files).
    pub files_created: u64,
    /// Files deleted (including temporary safe-write files that replaced
    /// their targets).
    pub files_deleted: u64,
    /// Safe-write (atomic replace) operations completed.
    pub safe_writes: u64,
    /// Individual append (write-request) operations.
    pub appends: u64,
    /// Extent-allocation events (each may return several extents).
    pub allocation_events: u64,
    /// Total bytes ever written to files (includes rewrites).
    pub bytes_written: u64,
    /// Total bytes of deleted files.
    pub bytes_deleted: u64,
    /// Checkpoints performed (deferred frees made reusable).
    pub checkpoints: u64,
    /// Allocation retries that required an early checkpoint (allocation
    /// pressure forcing a log flush).
    pub forced_checkpoints: u64,
}

/// What a write-path operation did, so callers can charge the disk model.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WriteReceipt {
    /// The file that now holds the data.
    pub file_id: FileId,
    /// Physical byte runs written, in write order (one entry per allocation,
    /// clipped to the bytes actually written into it).
    pub runs: Vec<ByteRun>,
    /// Bytes of file data written.
    pub bytes_written: u64,
}

/// An NTFS-like volume.
#[derive(Debug, Clone)]
pub struct Volume {
    config: VolumeConfig,
    allocator: SelectableAllocator,
    files: BTreeMap<FileId, FileRecord>,
    names: BTreeMap<String, FileId>,
    next_id: u64,
    /// Extents freed by deletions that have not yet been checkpointed; they
    /// are unusable until [`Volume::checkpoint`] runs.
    pending_free: Vec<Extent>,
    ops_since_checkpoint: u64,
    stats: VolumeStats,
    /// Incremental per-file fragment-count accounting: updated at every
    /// layout mutation so [`Volume::fragmentation`] is O(1) in the file
    /// count (the maintenance scheduler observes it every tick).
    frag_tracker: FragmentationTracker,
    /// Allocated-cluster counts of every live file, so the foreground
    /// watermark (largest live allocation) is an O(1) max query instead of a
    /// full scan per defragmented file.
    alloc_tracker: CountMultiset,
}

impl Volume {
    /// Formats a new volume.
    pub fn format(config: VolumeConfig) -> Result<Self, FsError> {
        config.validate()?;
        let mut allocator = SelectableAllocator::with_placement(
            config.allocation_policy,
            config.total_clusters(),
            config.run_cache,
            config.placement,
        );
        let mft = config.mft_clusters();
        if mft > 0 {
            allocator
                .reserve_exact(Extent::new(0, mft))
                .map_err(FsError::from)?;
        }
        Ok(Volume {
            config,
            allocator,
            files: BTreeMap::new(),
            names: BTreeMap::new(),
            next_id: 1,
            pending_free: Vec::new(),
            ops_since_checkpoint: 0,
            stats: VolumeStats::default(),
            frag_tracker: FragmentationTracker::new(),
            alloc_tracker: CountMultiset::new(),
        })
    }

    /// The volume configuration.
    pub fn config(&self) -> &VolumeConfig {
        &self.config
    }

    /// Capacity available to file data (total minus the MFT zone), in bytes.
    pub fn data_capacity_bytes(&self) -> u64 {
        (self.config.total_clusters() - self.config.mft_clusters()) * self.config.cluster_size
    }

    /// Bytes currently free for file data.  Space pending checkpoint counts as
    /// free capacity (it exists) even though it is not yet reusable.
    pub fn free_bytes(&self) -> u64 {
        (self.allocator.free_clusters() + self.pending_clusters()) * self.config.cluster_size
    }

    /// Clusters held in the pending-free queue.
    pub fn pending_clusters(&self) -> u64 {
        self.pending_free.iter().map(|e| e.len).sum()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &VolumeStats {
        &self.stats
    }

    /// Number of live files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Looks a file up by id.
    pub fn file(&self, id: FileId) -> Result<&FileRecord, FsError> {
        self.files.get(&id).ok_or(FsError::NoSuchFile(id.0))
    }

    /// Looks a file id up by name.
    pub fn lookup(&self, name: &str) -> Result<FileId, FsError> {
        self.names
            .get(name)
            .copied()
            .ok_or_else(|| FsError::NoSuchName(name.to_string()))
    }

    /// Iterates over all live file records in id order.
    pub fn iter_files(&self) -> impl Iterator<Item = &FileRecord> {
        self.files.values()
    }

    /// Creates an empty file.
    pub fn create(&mut self, name: &str) -> Result<FileId, FsError> {
        if name.is_empty() {
            return Err(FsError::InvalidName(name.to_string()));
        }
        if self.names.contains_key(name) {
            return Err(FsError::NameExists(name.to_string()));
        }
        let id = FileId(self.next_id);
        self.next_id += 1;
        self.files.insert(id, FileRecord::new(id, name));
        self.names.insert(name.to_string(), id);
        self.stats.files_created += 1;
        // An empty file counts as an object with zero fragments and zero
        // allocated clusters.
        self.frag_tracker.record_insert(0);
        self.alloc_tracker.insert(0);
        Ok(id)
    }

    /// Appends `bytes` bytes to a file, allocating clusters as needed.
    ///
    /// This is the paper's append-granular allocation path: each call models
    /// one write request hitting the filesystem, which must allocate without
    /// knowing how much more data will follow.
    pub fn append(&mut self, id: FileId, bytes: u64) -> Result<Vec<ByteRun>, FsError> {
        if bytes == 0 {
            return Ok(Vec::new());
        }
        let (needed, hint, write_offset) = {
            let record = self.files.get(&id).ok_or(FsError::NoSuchFile(id.0))?;
            let allocated = record.allocated_clusters();
            let allocated_bytes = allocated * self.config.cluster_size;
            let new_size = record.size_bytes + bytes;
            let needed_bytes = new_size.saturating_sub(allocated_bytes);
            let needed = needed_bytes.div_ceil(self.config.cluster_size);
            (needed, record.extension_hint(), record.size_bytes)
        };

        let mut new_extents = Vec::new();
        if needed > 0 {
            // Speculative preallocation for sequentially growing files: double
            // the allocation (bounded) so that one writer's file stays in a
            // few large extents even when other writes are in flight.  The
            // excess is trimmed when the file is closed.  If the volume cannot
            // satisfy the speculative request, fall back to the exact need.
            let allocated = self
                .files
                .get(&id)
                .expect("checked above")
                .allocated_clusters();
            let speculative = if self.config.preallocation_cap_clusters > 0 {
                needed.max(allocated.min(self.config.preallocation_cap_clusters))
            } else {
                needed
            };
            let mut request = AllocRequest::best_effort(speculative);
            if let Some(hint) = hint {
                request = request.with_hint(hint);
            }
            new_extents = match self.allocate_with_pressure(&request) {
                Ok(extents) => extents,
                Err(_) if speculative > needed => {
                    let mut fallback = AllocRequest::best_effort(needed);
                    if let Some(hint) = hint {
                        fallback = fallback.with_hint(hint);
                    }
                    self.allocate_with_pressure(&fallback)?
                }
                Err(err) => return Err(err),
            };
            self.stats.allocation_events += 1;
        }

        self.with_layout(id, |record| {
            record.push_extents(&new_extents);
            record.size_bytes += bytes;
        })?;
        self.stats.appends += 1;
        self.stats.bytes_written += bytes;

        // Report the byte runs this append physically wrote: the region from
        // the old end-of-file to the new end-of-file, walked over the extent
        // map.  (Recomputing from the updated record keeps partially-filled
        // final clusters correct.)
        let record = self.files.get(&id).expect("checked above");
        Ok(Self::runs_for_range(
            record,
            self.config.cluster_size,
            write_offset,
            bytes,
        ))
    }

    /// Creates a file and writes `size_bytes` of data in `write_request_size`
    /// chunks — the workload's put path.
    pub fn write_file(
        &mut self,
        name: &str,
        size_bytes: u64,
        write_request_size: u64,
    ) -> Result<WriteReceipt, FsError> {
        let id = self.create(name)?;
        let receipt = self.fill(id, size_bytes, write_request_size)?;
        self.bump_op();
        Ok(receipt)
    }

    /// Creates a file whose final size is declared up front, allocating all of
    /// it in a single request — the interface extension the paper proposes.
    pub fn write_file_preallocated(
        &mut self,
        name: &str,
        size_bytes: u64,
        write_request_size: u64,
    ) -> Result<WriteReceipt, FsError> {
        let id = self.create(name)?;
        let clusters = size_bytes.div_ceil(self.config.cluster_size);
        if clusters > 0 {
            let extents = self.allocate_with_pressure(&AllocRequest::best_effort(clusters))?;
            self.stats.allocation_events += 1;
            self.with_layout(id, |record| record.push_extents(&extents))?;
        }
        // Data is still written in write-request-sized chunks, but no further
        // allocation happens.
        let receipt = self.fill(id, size_bytes, write_request_size)?;
        self.bump_op();
        Ok(receipt)
    }

    /// Creates a file for an object migrating in from another shard, placing
    /// its data as the **maintenance** consumer: under a banded or reserve
    /// [`PlacementPolicy`] the allocation is confined to the maintenance
    /// region and *fails* rather than spilling into the space foreground
    /// writes need — that refusal is the placement guarantee cross-shard
    /// rebalancing relies on.
    ///
    /// The object's size is known up front (it already exists on the source
    /// shard), so the whole allocation happens in one best-effort request,
    /// like [`Volume::write_file_preallocated`].  On allocation failure the
    /// just-created empty file is rolled back and the volume is unchanged.
    pub fn ingest_as_maintenance(
        &mut self,
        name: &str,
        size_bytes: u64,
    ) -> Result<WriteReceipt, FsError> {
        let id = self.create(name)?;
        let clusters = size_bytes.div_ceil(self.config.cluster_size);
        if clusters > 0 {
            let watermark = self.foreground_watermark();
            let request = AllocRequest::best_effort(clusters);
            let extents = match self.allocator.allocate_as(
                &request,
                PlacementConsumer::Maintenance {
                    foreground_watermark: watermark,
                },
            ) {
                Ok(extents) => extents,
                Err(err) => {
                    let _ = self.delete(id);
                    return Err(FsError::from(err));
                }
            };
            self.stats.allocation_events += 1;
            self.with_layout(id, |record| {
                record.push_extents(&extents);
                record.size_bytes = size_bytes;
            })?;
        }
        self.stats.bytes_written += size_bytes;
        let record = self.files.get(&id).expect("just created");
        let runs = Self::runs_for_range(record, self.config.cluster_size, 0, size_bytes);
        self.bump_op();
        Ok(WriteReceipt {
            file_id: id,
            runs,
            bytes_written: size_bytes,
        })
    }

    /// Appends `size_bytes` in chunks to an existing file, then trims any
    /// speculative preallocation (the "close" of the write).
    fn fill(
        &mut self,
        id: FileId,
        size_bytes: u64,
        write_request_size: u64,
    ) -> Result<WriteReceipt, FsError> {
        let chunk = write_request_size.max(1);
        let mut runs = Vec::new();
        let mut written = 0;
        while written < size_bytes {
            let this = chunk.min(size_bytes - written);
            runs.extend(self.append(id, this)?);
            written += this;
        }
        self.trim_excess(id)?;
        Ok(WriteReceipt {
            file_id: id,
            runs,
            bytes_written: written,
        })
    }

    /// Releases clusters allocated beyond the file's logical size (undoing
    /// speculative preallocation when the file is closed).
    fn trim_excess(&mut self, id: FileId) -> Result<(), FsError> {
        let cluster_size = self.config.cluster_size;
        let mut to_release: Vec<Extent> = Vec::new();
        self.with_layout(id, |record| {
            let needed = record.size_bytes.div_ceil(cluster_size);
            let mut excess = record.allocated_clusters().saturating_sub(needed);
            while excess > 0 {
                let last = record
                    .extents
                    .last_mut()
                    .expect("excess implies extents exist");
                if last.len <= excess {
                    excess -= last.len;
                    to_release.push(*last);
                    record.extents.pop();
                } else {
                    last.len -= excess;
                    to_release.push(Extent::new(last.end(), excess));
                    excess = 0;
                }
            }
        })?;
        for extent in to_release {
            // Preallocated clusters never held committed data, so they return
            // to the free pool immediately rather than via the pending queue.
            self.allocator.free(&[extent]).map_err(FsError::from)?;
        }
        Ok(())
    }

    /// Deletes a file.  Its space goes onto the pending-free queue and becomes
    /// reusable at the next checkpoint.
    pub fn delete(&mut self, id: FileId) -> Result<(), FsError> {
        let record = self.files.remove(&id).ok_or(FsError::NoSuchFile(id.0))?;
        self.untrack(&record);
        self.names.remove(&record.name);
        self.stats.files_deleted += 1;
        self.stats.bytes_deleted += record.size_bytes;
        self.pending_free.extend(record.extents);
        self.bump_op();
        Ok(())
    }

    /// Deletes a file by name.
    pub fn delete_by_name(&mut self, name: &str) -> Result<(), FsError> {
        let id = self.lookup(name)?;
        self.delete(id)
    }

    /// Atomically replaces the contents of `name` with `size_bytes` of new
    /// data, using the safe-write protocol the paper describes: write a
    /// temporary file, force it to disk, then swap it in and delete the old
    /// file.
    pub fn safe_write(
        &mut self,
        name: &str,
        size_bytes: u64,
        write_request_size: u64,
    ) -> Result<WriteReceipt, FsError> {
        let old_id = self.lookup(name)?;
        let temp_name = format!("~tmp.{}.{}", self.next_id, name);
        let temp_id = self.create(&temp_name)?;
        let receipt = match self.fill(temp_id, size_bytes, write_request_size) {
            Ok(receipt) => receipt,
            Err(err) => {
                // Clean up the partially written temporary file.
                let _ = self.delete(temp_id);
                return Err(err);
            }
        };

        // ReplaceFile(): the old file is deleted and the temporary file takes
        // over its name.  Both copies coexisted until this point, which is
        // what makes safe writes churn free space.
        let old = self.files.remove(&old_id).expect("old file exists");
        self.untrack(&old);
        self.names.remove(&old.name);
        self.stats.files_deleted += 1;
        self.stats.bytes_deleted += old.size_bytes;
        self.pending_free.extend(old.extents);

        self.names.remove(&temp_name);
        let record = self.files.get_mut(&temp_id).expect("temp file exists");
        record.name = name.to_string();
        self.names.insert(name.to_string(), temp_id);

        self.stats.safe_writes += 1;
        self.bump_op();
        Ok(WriteReceipt {
            file_id: temp_id,
            ..receipt
        })
    }

    /// Atomically replaces several objects whose writes are in flight at the
    /// same time, as a concurrent web application does.
    ///
    /// The temporary files are created together and their write requests are
    /// appended **round-robin**, so their allocations interleave on disk
    /// exactly as concurrent uploads interleave under NTFS.  This is the
    /// workload property (paper Section 3.2: "applications that concurrently
    /// process unrelated requests complicate the situation") that makes even
    /// constant-size objects fragment over time.
    pub fn safe_write_batch(
        &mut self,
        items: &[(&str, u64)],
        write_request_size: u64,
    ) -> Result<Vec<WriteReceipt>, FsError> {
        let chunk = write_request_size.max(1);
        // Validate and create every temporary file first.  Any failure before
        // the commit loop must delete the temporaries already created, or
        // their names and clusters would be stranded forever.
        let mut staged: Vec<(FileId, FileId, u64, Vec<ByteRun>, u64)> =
            Vec::with_capacity(items.len());
        for (name, size) in items {
            let staging = self.lookup(name).and_then(|old_id| {
                let temp_name = format!("~tmp.{}.{}", self.next_id, name);
                Ok((old_id, self.create(&temp_name)?))
            });
            match staging {
                Ok((old_id, temp_id)) => staged.push((old_id, temp_id, *size, Vec::new(), 0)),
                Err(err) => {
                    self.abort_batch(&staged);
                    return Err(err);
                }
            }
        }

        // Round-robin the write requests across the in-flight temporaries.
        let mut pending = true;
        while pending {
            pending = false;
            let mut failure = None;
            for (_, temp_id, size, runs, written) in staged.iter_mut() {
                if *written < *size {
                    let this = chunk.min(*size - *written);
                    match self.append(*temp_id, this) {
                        Ok(new_runs) => runs.extend(new_runs),
                        Err(err) => {
                            failure = Some(err);
                            break;
                        }
                    }
                    *written += this;
                    if *written < *size {
                        pending = true;
                    }
                }
            }
            if let Some(err) = failure {
                self.abort_batch(&staged);
                return Err(err);
            }
        }

        // Close every temporary file (trimming preallocation), then commit
        // each replacement (ReplaceFile per object).
        for (_, temp_id, _, _, _) in &staged {
            if let Err(err) = self.trim_excess(*temp_id) {
                self.abort_batch(&staged);
                return Err(err);
            }
        }
        let mut receipts = Vec::with_capacity(staged.len());
        for ((name, _), (_, temp_id, size, runs, _)) in items.iter().zip(staged) {
            // Replace whatever holds the name *now*: when one batch names the
            // same target twice, that is the previous item's just-committed
            // temporary, so the batch degenerates to sequential replacement
            // (last writer wins) — the same semantics `update_batch` has.
            let old_id = self.names[*name];
            let old = self.files.remove(&old_id).expect("old file exists");
            self.untrack(&old);
            self.names.remove(&old.name);
            self.stats.files_deleted += 1;
            self.stats.bytes_deleted += old.size_bytes;
            self.pending_free.extend(old.extents);

            let temp_name = self.files.get(&temp_id).expect("temp exists").name.clone();
            self.names.remove(&temp_name);
            let record = self.files.get_mut(&temp_id).expect("temp file exists");
            record.name = name.to_string();
            self.names.insert(name.to_string(), temp_id);

            self.stats.safe_writes += 1;
            self.bump_op();
            receipts.push(WriteReceipt {
                file_id: temp_id,
                runs,
                bytes_written: size,
            });
        }
        Ok(receipts)
    }

    /// Deletes the temporary files of a failed [`Volume::safe_write_batch`],
    /// releasing their names and (via the pending queue) their clusters.  The
    /// target objects themselves were never touched.
    fn abort_batch(&mut self, staged: &[(FileId, FileId, u64, Vec<ByteRun>, u64)]) {
        for (_, temp_id, _, _, _) in staged {
            let _ = self.delete(*temp_id);
        }
    }

    /// The byte runs a full sequential read of the file touches.
    pub fn read_plan(&self, id: FileId) -> Result<Vec<ByteRun>, FsError> {
        Ok(self.file(id)?.byte_runs(self.config.cluster_size))
    }

    /// Makes all pending-deleted space reusable (models the NTFS log commit).
    pub fn checkpoint(&mut self) {
        if self.pending_free.is_empty() {
            self.ops_since_checkpoint = 0;
            return;
        }
        let pending = std::mem::take(&mut self.pending_free);
        for extent in pending {
            self.allocator
                .free(&[extent])
                .expect("pending extents were allocated and are freed exactly once");
        }
        self.ops_since_checkpoint = 0;
        self.stats.checkpoints += 1;
    }

    /// Per-object fragment counts (the paper's headline metric).
    ///
    /// Answered from the incremental tracker in O(distinct fragment counts)
    /// — independent of the number of live files, so the maintenance
    /// scheduler can observe it every tick.
    pub fn fragmentation(&self) -> FragmentationSummary {
        self.frag_tracker.summary()
    }

    /// Full-scan recompute of [`Volume::fragmentation`] — the oracle the
    /// property tests compare the incremental tracker against.
    pub fn fragmentation_rescan(&self) -> FragmentationSummary {
        FragmentationSummary::from_layouts(self.files.values().map(|f| f.extents.as_slice()))
    }

    /// Free-space shape report.
    pub fn free_space_report(&self) -> FreeSpaceReport {
        FreeSpaceReport::from_free_space(self.allocator.free_space())
    }

    /// Occupancy of the placement bands over the volume's clusters — the
    /// probe-tick gauge behind "is maintenance crowding the foreground
    /// band?".  Under [`PlacementPolicy::Unrestricted`] the whole volume is
    /// the foreground band.
    pub fn band_occupancy(&self) -> BandOccupancy {
        let map = self.allocator.free_space();
        let total = map.total_clusters();
        let boundary = self.config.placement.boundary_cluster(total);
        BandOccupancy::from_runs(total, boundary, &map.free_runs())
    }

    /// Read-only access to the allocator's free-space map, for placement
    /// instrumentation (the proptests measure the foreground band's largest
    /// free run across defragmentation steps).
    pub fn free_space(&self) -> &lor_alloc::RunIndexMap {
        self.allocator.free_space()
    }

    /// The placement policy in effect.
    pub fn placement(&self) -> PlacementPolicy {
        self.config.placement
    }

    /// The largest contiguous allocation (in clusters) a single foreground
    /// operation could still need: the allocation of the largest live file,
    /// since a safe write stages a complete replacement copy of its target.
    /// The [`PlacementPolicy::Reserve`] variant forbids maintenance from
    /// consuming any free run longer than this watermark.
    pub fn foreground_watermark(&self) -> u64 {
        self.alloc_tracker.max().unwrap_or(0)
    }

    /// Direct (reserve-exact) access to the allocator for test fixtures such
    /// as the pathological fragmenter.
    pub(crate) fn allocator_mut(&mut self) -> &mut SelectableAllocator {
        &mut self.allocator
    }

    /// Mutable access to a file record, bypassing the incremental
    /// fragmentation accounting.  Only the legacy-equivalence test uses this
    /// — production extent-map mutations go through
    /// [`Volume::replace_extents`] / `with_layout` so the trackers stay in
    /// step.
    #[cfg(test)]
    pub(crate) fn file_mut(&mut self, id: FileId) -> Result<&mut FileRecord, FsError> {
        self.files.get_mut(&id).ok_or(FsError::NoSuchFile(id.0))
    }

    /// Replaces a file's extent map with a relocated copy of the same data
    /// (the defragmenter's swap), keeping the incremental accounting in
    /// step.
    pub(crate) fn replace_extents(
        &mut self,
        id: FileId,
        new_extents: Vec<Extent>,
    ) -> Result<(), FsError> {
        self.with_layout(id, |record| record.extents = new_extents)
    }

    /// Runs `mutate` over a file record and reconciles the fragmentation and
    /// allocation trackers with the record's before/after layout.  Every
    /// extent-map mutation of a live file must go through here.
    fn with_layout<R>(
        &mut self,
        id: FileId,
        mutate: impl FnOnce(&mut FileRecord) -> R,
    ) -> Result<R, FsError> {
        let record = self.files.get_mut(&id).ok_or(FsError::NoSuchFile(id.0))?;
        let old_fragments = record.fragment_count() as u64;
        let old_clusters = record.allocated_clusters();
        let result = mutate(record);
        let new_fragments = record.fragment_count() as u64;
        let new_clusters = record.allocated_clusters();
        self.frag_tracker
            .record_replace(old_fragments, new_fragments);
        self.alloc_tracker.replace(old_clusters, new_clusters);
        Ok(result)
    }

    /// Removes a just-deleted file from the incremental trackers.
    fn untrack(&mut self, record: &FileRecord) {
        self.frag_tracker
            .record_remove(record.fragment_count() as u64);
        self.alloc_tracker.remove(record.allocated_clusters());
    }

    /// Cluster size shortcut.
    pub fn cluster_size(&self) -> u64 {
        self.config.cluster_size
    }

    /// Allocates, retrying once after a forced checkpoint if the volume is
    /// under allocation pressure (the log flush NTFS would perform).
    fn allocate_with_pressure(&mut self, request: &AllocRequest) -> Result<Vec<Extent>, FsError> {
        match self.allocator.allocate(request) {
            Ok(extents) => Ok(extents),
            Err(AllocError::OutOfSpace { .. }) if !self.pending_free.is_empty() => {
                self.stats.forced_checkpoints += 1;
                self.checkpoint();
                self.allocator.allocate(request).map_err(FsError::from)
            }
            Err(err) => Err(FsError::from(err)),
        }
    }

    /// Counts a completed mutating operation and checkpoints when due.
    fn bump_op(&mut self) {
        self.ops_since_checkpoint += 1;
        if self.config.checkpoint_interval_ops > 0
            && self.ops_since_checkpoint >= self.config.checkpoint_interval_ops
        {
            self.checkpoint();
        }
    }

    /// Byte runs for the logical range `[offset, offset + len)` of a file.
    fn runs_for_range(
        record: &FileRecord,
        cluster_size: u64,
        offset: u64,
        len: u64,
    ) -> Vec<ByteRun> {
        if len == 0 {
            return Vec::new();
        }
        let mut runs = Vec::new();
        let mut logical = 0u64; // logical byte position of the current extent's start
        let end = (offset + len).min(record.size_bytes);
        for extent in &record.extents {
            let extent_bytes = extent.len * cluster_size;
            let extent_logical_end = logical + extent_bytes;
            if extent_logical_end > offset && logical < end {
                let from = offset.max(logical);
                let to = end.min(extent_logical_end);
                let physical = extent.start * cluster_size + (from - logical);
                runs.push(ByteRun::new(physical, to - from));
            }
            logical = extent_logical_end;
            if logical >= end {
                break;
            }
        }
        runs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lor_alloc::ExtentListExt;

    const MB: u64 = 1 << 20;

    fn small_volume() -> Volume {
        Volume::format(VolumeConfig::new(256 * MB)).unwrap()
    }

    #[test]
    fn format_reserves_the_mft_zone() {
        let volume = small_volume();
        let report = volume.free_space_report();
        assert_eq!(report.total_clusters, 256 * MB / 4096);
        assert!(report.free_clusters < report.total_clusters);
        assert_eq!(
            volume.data_capacity_bytes(),
            (report.total_clusters - volume.config().mft_clusters()) * 4096
        );
    }

    #[test]
    fn bad_configs_are_rejected() {
        assert!(Volume::format(VolumeConfig {
            cluster_size: 0,
            ..VolumeConfig::new(MB)
        })
        .is_err());
        assert!(Volume::format(VolumeConfig::new(0)).is_err());
        assert!(Volume::format(VolumeConfig {
            mft_zone_fraction: 0.9,
            ..VolumeConfig::new(MB)
        })
        .is_err());
    }

    #[test]
    fn create_write_read_delete_round_trip() {
        let mut volume = small_volume();
        let receipt = volume.write_file("object-1", MB, 64 * 1024).unwrap();
        assert_eq!(receipt.bytes_written, MB);
        let id = volume.lookup("object-1").unwrap();
        assert_eq!(id, receipt.file_id);

        let record = volume.file(id).unwrap();
        assert_eq!(record.size_bytes, MB);
        assert_eq!(record.allocated_clusters(), MB / 4096);

        let plan = volume.read_plan(id).unwrap();
        assert_eq!(plan.iter().map(|r| r.len).sum::<u64>(), MB);

        volume.delete(id).unwrap();
        assert!(volume.lookup("object-1").is_err());
        assert!(volume.read_plan(id).is_err());
    }

    #[test]
    fn duplicate_and_invalid_names_are_rejected() {
        let mut volume = small_volume();
        volume.create("a").unwrap();
        assert!(matches!(volume.create("a"), Err(FsError::NameExists(_))));
        assert!(matches!(volume.create(""), Err(FsError::InvalidName(_))));
    }

    #[test]
    fn sequential_appends_on_a_clean_volume_stay_contiguous() {
        let mut volume = small_volume();
        let receipt = volume.write_file("big", 10 * MB, 64 * 1024).unwrap();
        let record = volume.file(receipt.file_id).unwrap();
        assert_eq!(record.fragment_count(), 1);
        // The write receipt covers every byte exactly once.
        assert_eq!(receipt.runs.iter().map(|r| r.len).sum::<u64>(), 10 * MB);
    }

    #[test]
    fn append_write_receipt_covers_only_the_new_bytes() {
        let mut volume = small_volume();
        let id = volume.create("f").unwrap();
        let first = volume.append(id, 100_000).unwrap();
        let second = volume.append(id, 50_000).unwrap();
        assert_eq!(first.iter().map(|r| r.len).sum::<u64>(), 100_000);
        assert_eq!(second.iter().map(|r| r.len).sum::<u64>(), 50_000);
        // The second append's first byte sits right after the first append's
        // last byte (same cluster, no re-write of earlier data).
        let first_end = first.last().unwrap();
        let second_start = second.first().unwrap();
        assert_eq!(first_end.end(), second_start.offset);
    }

    #[test]
    fn ingest_as_maintenance_respects_the_placement_band() {
        // Banded placement: maintenance may only allocate in the top 30%.
        let mut config = VolumeConfig::new(64 * MB);
        config.placement = PlacementPolicy::banded(0.7);
        let mut volume = Volume::format(config).unwrap();

        let boundary = volume
            .placement()
            .boundary_cluster(volume.config().total_clusters());
        let receipt = volume.ingest_as_maintenance("migrant", 2 * MB).unwrap();
        assert_eq!(receipt.bytes_written, 2 * MB);
        assert_eq!(receipt.runs.iter().map(|r| r.len).sum::<u64>(), 2 * MB);
        let record = volume.file(receipt.file_id).unwrap();
        for extent in &record.extents {
            assert!(
                extent.start >= boundary,
                "migration wrote into the foreground band: extent at {} < boundary {}",
                extent.start,
                boundary
            );
        }

        // Exhaust the maintenance band: further migration must *fail*, not
        // spill into the foreground band, and must leave no file behind.
        let files_before = volume.file_count();
        let err = volume.ingest_as_maintenance("too-big", 60 * MB);
        assert!(err.is_err());
        assert_eq!(volume.file_count(), files_before);
        assert!(volume.lookup("too-big").is_err());
    }

    #[test]
    fn ingest_as_maintenance_unrestricted_matches_a_plain_write() {
        let mut volume = small_volume();
        let receipt = volume.ingest_as_maintenance("obj", MB).unwrap();
        assert_eq!(receipt.bytes_written, MB);
        let record = volume.file(receipt.file_id).unwrap();
        assert_eq!(record.size_bytes, MB);
        assert_eq!(record.allocated_clusters(), MB / 4096);
        // Size known up front → one allocation, contiguous on a clean volume.
        assert_eq!(record.fragment_count(), 1);
    }

    #[test]
    fn deleted_space_is_not_reusable_until_checkpoint() {
        let mut config = VolumeConfig::new(16 * MB);
        config.checkpoint_interval_ops = 1_000_000; // effectively manual
        config.mft_zone_fraction = 0.0;
        let mut volume = Volume::format(config).unwrap();

        // Fill most of the volume.
        volume.write_file("a", 12 * MB, 64 * 1024).unwrap();
        volume.delete_by_name("a").unwrap();
        assert!(volume.pending_clusters() > 0);

        // Without a checkpoint the space is unavailable, so this large write
        // is forced to trigger the allocation-pressure checkpoint.
        let before = volume.stats().forced_checkpoints;
        volume.write_file("b", 12 * MB, 64 * 1024).unwrap();
        assert_eq!(volume.stats().forced_checkpoints, before + 1);
    }

    #[test]
    fn checkpoint_makes_space_reusable() {
        let mut volume = small_volume();
        let receipt = volume.write_file("a", 4 * MB, 64 * 1024).unwrap();
        let free_before = volume.free_space_report().free_clusters;
        volume.delete(receipt.file_id).unwrap();
        volume.checkpoint();
        let free_after = volume.free_space_report().free_clusters;
        assert_eq!(free_after, free_before + 4 * MB / 4096);
        assert_eq!(volume.pending_clusters(), 0);
    }

    #[test]
    fn safe_write_replaces_contents_and_keeps_the_name() {
        let mut volume = small_volume();
        volume.write_file("doc", 2 * MB, 64 * 1024).unwrap();
        let old_id = volume.lookup("doc").unwrap();
        let receipt = volume.safe_write("doc", 3 * MB, 64 * 1024).unwrap();
        let new_id = volume.lookup("doc").unwrap();
        assert_ne!(old_id, new_id);
        assert_eq!(new_id, receipt.file_id);
        assert_eq!(volume.file(new_id).unwrap().size_bytes, 3 * MB);
        assert_eq!(volume.file_count(), 1);
        assert_eq!(volume.stats().safe_writes, 1);
        // No temporary file lingers.
        assert!(volume.iter_files().all(|f| !f.name.starts_with("~tmp.")));
    }

    #[test]
    fn batched_safe_writes_interleave_and_fragment() {
        let mut config = VolumeConfig::new(128 * MB);
        config.mft_zone_fraction = 0.0;
        let mut volume = Volume::format(config).unwrap();
        for i in 0..16 {
            volume
                .write_file(&format!("obj-{i}"), 2 * MB, 64 * 1024)
                .unwrap();
        }
        // Several rounds of concurrent (batched) replacement.
        for _ in 0..4 {
            for group in (0..16).collect::<Vec<_>>().chunks(4) {
                let names: Vec<String> = group.iter().map(|i| format!("obj-{i}")).collect();
                let items: Vec<(&str, u64)> = names.iter().map(|n| (n.as_str(), 2 * MB)).collect();
                let receipts = volume.safe_write_batch(&items, 64 * 1024).unwrap();
                assert_eq!(receipts.len(), 4);
                for receipt in &receipts {
                    assert_eq!(receipt.bytes_written, 2 * MB);
                    assert_eq!(receipt.runs.iter().map(|r| r.len).sum::<u64>(), 2 * MB);
                }
            }
        }
        assert_eq!(volume.file_count(), 16);
        // Interleaved writes fragment even though every object has the same size.
        let summary = volume.fragmentation();
        assert!(
            summary.fragments_per_object > 1.5,
            "interleaved safe writes should fragment, got {}",
            summary.fragments_per_object
        );
        // No temporary file lingers and every object reads back in full.
        for i in 0..16 {
            let id = volume.lookup(&format!("obj-{i}")).unwrap();
            assert_eq!(
                volume
                    .read_plan(id)
                    .unwrap()
                    .iter()
                    .map(|r| r.len)
                    .sum::<u64>(),
                2 * MB
            );
        }
    }

    #[test]
    fn safe_write_of_missing_file_fails() {
        let mut volume = small_volume();
        assert!(matches!(
            volume.safe_write("ghost", MB, 64 * 1024),
            Err(FsError::NoSuchName(_))
        ));
    }

    #[test]
    fn duplicate_targets_in_a_batch_degenerate_to_sequential_replacement() {
        let mut volume = small_volume();
        volume.write_file("a", MB, 64 * 1024).unwrap();
        let receipts = volume
            .safe_write_batch(&[("a", 2 * MB), ("a", 3 * MB)], 64 * 1024)
            .unwrap();
        assert_eq!(receipts.len(), 2);
        assert_eq!(volume.file_count(), 1);
        // Last writer wins; the intermediate version's space is reclaimable.
        let id = volume.lookup("a").unwrap();
        assert_eq!(volume.file(id).unwrap().size_bytes, 3 * MB);
        assert_eq!(id, receipts[1].file_id);
        assert!(volume.iter_files().all(|f| !f.name.starts_with("~tmp.")));
        assert_eq!(volume.stats().safe_writes, 2);
    }

    #[test]
    fn failed_batch_safe_write_strands_no_temporaries() {
        // Staging failure: the second name does not exist, after the first
        // item's temporary was already created.
        let mut volume = small_volume();
        volume.write_file("a", MB, 64 * 1024).unwrap();
        let free_before = volume.free_bytes();
        let err = volume
            .safe_write_batch(&[("a", MB), ("missing", MB)], 64 * 1024)
            .unwrap_err();
        assert!(matches!(err, FsError::NoSuchName(_)));
        assert_eq!(volume.file_count(), 1, "only the original object remains");
        assert!(volume.iter_files().all(|f| !f.name.starts_with("~tmp.")));
        assert_eq!(volume.free_bytes(), free_before, "no clusters may leak");

        // Allocation failure mid-round-robin: both replacements in flight
        // need more space than the volume has.
        let mut config = VolumeConfig::new(16 * MB);
        config.mft_zone_fraction = 0.0;
        let mut volume = Volume::format(config).unwrap();
        volume.write_file("x", 6 * MB, 64 * 1024).unwrap();
        volume.write_file("y", 6 * MB, 64 * 1024).unwrap();
        let err = volume
            .safe_write_batch(&[("x", 6 * MB), ("y", 6 * MB)], 64 * 1024)
            .unwrap_err();
        assert!(matches!(err, FsError::Alloc(_)));
        assert_eq!(volume.file_count(), 2, "originals intact");
        assert!(volume.iter_files().all(|f| !f.name.starts_with("~tmp.")));
        for name in ["x", "y"] {
            let id = volume.lookup(name).unwrap();
            let bytes: u64 = volume.read_plan(id).unwrap().iter().map(|r| r.len).sum();
            assert_eq!(bytes, 6 * MB, "{name} still reads back in full");
        }
    }

    #[test]
    fn preallocated_writes_are_contiguous_even_on_a_fragmented_volume() {
        let mut config = VolumeConfig::new(64 * MB);
        config.mft_zone_fraction = 0.0;
        config.checkpoint_interval_ops = 1;
        let mut volume = Volume::format(config).unwrap();

        // Fragment the free space: many small files, delete every other one.
        let ids: Vec<FileId> = (0..256)
            .map(|i| {
                volume
                    .write_file(&format!("pad{i}"), 128 * 1024, 64 * 1024)
                    .unwrap()
                    .file_id
            })
            .collect();
        for id in ids.iter().step_by(2) {
            volume.delete(*id).unwrap();
        }
        volume.checkpoint();

        // An incremental write of 4 MB has to fragment across the holes...
        let incremental = volume.write_file("incremental", 4 * MB, 64 * 1024).unwrap();
        let incremental_fragments = volume.file(incremental.file_id).unwrap().fragment_count();
        // ...while a preallocated write can grab the one large run at the end
        // of the volume in a single piece.
        let preallocated = volume
            .write_file_preallocated("preallocated", 4 * MB, 64 * 1024)
            .unwrap();
        let preallocated_fragments = volume.file(preallocated.file_id).unwrap().fragment_count();
        assert!(
            preallocated_fragments <= incremental_fragments,
            "preallocation must not fragment more ({preallocated_fragments} vs {incremental_fragments})"
        );
        assert_eq!(preallocated_fragments, 1);
    }

    #[test]
    fn stats_track_written_and_deleted_bytes() {
        let mut volume = small_volume();
        volume.write_file("a", MB, 64 * 1024).unwrap();
        volume.write_file("b", 2 * MB, 64 * 1024).unwrap();
        volume.safe_write("a", MB, 64 * 1024).unwrap();
        volume.delete_by_name("b").unwrap();
        let stats = volume.stats();
        assert_eq!(stats.bytes_written, 4 * MB);
        assert_eq!(stats.bytes_deleted, 3 * MB);
        assert_eq!(stats.files_created, 3); // a, b, and the safe-write temp
        assert_eq!(stats.files_deleted, 2); // old a, b
    }

    #[test]
    fn fragmentation_summary_counts_live_files_only() {
        let mut volume = small_volume();
        volume.write_file("a", MB, 64 * 1024).unwrap();
        volume.write_file("b", MB, 64 * 1024).unwrap();
        let summary = volume.fragmentation();
        assert_eq!(summary.objects, 2);
        assert!((summary.fragments_per_object - 1.0).abs() < 1e-9);
        volume.delete_by_name("a").unwrap();
        assert_eq!(volume.fragmentation().objects, 1);
    }

    #[test]
    fn runs_for_range_maps_logical_to_physical() {
        let mut record = FileRecord::new(FileId(1), "x");
        record.push_extents(&[Extent::new(100, 2), Extent::new(300, 2)]);
        record.size_bytes = 4 * 4096;
        // A range spanning the extent boundary.
        let runs = Volume::runs_for_range(&record, 4096, 4096, 8192);
        assert_eq!(
            runs,
            vec![
                ByteRun::new(101 * 4096, 4096),
                ByteRun::new(300 * 4096, 4096)
            ]
        );
        assert!(Volume::runs_for_range(&record, 4096, 0, 0).is_empty());
    }

    #[test]
    fn write_receipt_runs_are_within_the_allocated_extents() {
        let mut volume = small_volume();
        let receipt = volume.write_file("a", 3 * MB + 12345, 64 * 1024).unwrap();
        let record = volume.file(receipt.file_id).unwrap();
        let cluster = volume.cluster_size();
        for run in &receipt.runs {
            let covered = record
                .extents
                .iter()
                .any(|e| run.offset >= e.start * cluster && run.end() <= e.end() * cluster);
            assert!(covered, "write run {run:?} outside allocated extents");
        }
        assert_eq!(
            record.extents.total_clusters(),
            (3 * MB + 12345u64).div_ceil(cluster)
        );
    }
}
