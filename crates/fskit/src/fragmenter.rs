//! Artificial fragmentation, for the paper's §5.3 control experiment.
//!
//! The authors ran one experiment "on an artificially and pathologically
//! fragmented NTFS volume" and observed that fragmentation slowly *decreased*
//! over time, evidence that NTFS approaches an asymptote.  [`shatter`]
//! reproduces that starting condition: it dices the volume's free space into
//! small, regularly spaced holes so that every subsequent allocation is forced
//! to fragment.

use lor_alloc::{Extent, FreeSpace};
use serde::{Deserialize, Serialize};

use crate::error::FsError;
use crate::volume::Volume;

/// How a volume was shattered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShatterReport {
    /// Clusters pinned by the shatter operation (unavailable to files).
    pub pinned_clusters: u64,
    /// Free holes left between pinned runs.
    pub holes: u64,
    /// Size of each free hole, in clusters.
    pub hole_clusters: u64,
}

/// Dices the free space of `volume` into holes of `hole_clusters`, separated
/// by pinned runs of `pin_clusters` clusters.
///
/// The pinned runs model unmovable data (system files, already-placed
/// objects); they are allocated directly from the free-space map and never
/// released.  Only currently free space is affected — live files are not
/// touched — so this can be applied to an empty volume to create a
/// pathological starting state, or to an aged volume to make matters worse.
pub fn shatter(
    volume: &mut Volume,
    hole_clusters: u64,
    pin_clusters: u64,
) -> Result<ShatterReport, FsError> {
    if hole_clusters == 0 || pin_clusters == 0 {
        return Err(FsError::BadConfig(
            "shatter hole and pin sizes must be non-zero",
        ));
    }
    // Work over a snapshot of the free runs; pinning mutates the map.
    let free_runs: Vec<Extent> = volume.allocator_mut().free_space().free_runs();
    let mut pinned = 0u64;
    let mut holes = 0u64;
    let period = hole_clusters + pin_clusters;
    for run in free_runs {
        // Leave the first `hole_clusters` free, pin the next `pin_clusters`,
        // and repeat across the run.
        let mut offset = run.start + hole_clusters;
        while offset + pin_clusters <= run.end() {
            volume
                .allocator_mut()
                .reserve_exact(Extent::new(offset, pin_clusters))?;
            pinned += pin_clusters;
            holes += 1;
            offset += period;
        }
    }
    Ok(ShatterReport {
        pinned_clusters: pinned,
        holes,
        hole_clusters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::volume::VolumeConfig;

    const MB: u64 = 1 << 20;

    #[test]
    fn shatter_limits_the_largest_free_run() {
        let mut config = VolumeConfig::new(64 * MB);
        config.mft_zone_fraction = 0.0;
        let mut volume = Volume::format(config).unwrap();
        let report = shatter(&mut volume, 32, 4).unwrap();
        assert!(report.holes > 100);
        assert_eq!(report.hole_clusters, 32);
        let free = volume.free_space_report();
        assert!(
            free.largest_run <= 32 + 4,
            "largest run {} should be a single hole",
            free.largest_run
        );
        // Most of the space is still free (pins are small).
        assert!(free.free_fraction() > 0.8);
    }

    #[test]
    fn files_written_after_shattering_fragment_immediately() {
        let mut config = VolumeConfig::new(64 * MB);
        config.mft_zone_fraction = 0.0;
        let mut volume = Volume::format(config).unwrap();
        shatter(&mut volume, 32, 4).unwrap();
        let receipt = volume.write_file("big", 4 * MB, 64 * 1024).unwrap();
        let fragments = volume.file(receipt.file_id).unwrap().fragment_count();
        // 4 MB over 128 KB holes: at least 30 fragments.
        assert!(
            fragments >= 30,
            "expected heavy fragmentation, got {fragments}"
        );
    }

    #[test]
    fn zero_sizes_are_rejected() {
        let mut volume = Volume::format(VolumeConfig::new(16 * MB)).unwrap();
        assert!(shatter(&mut volume, 0, 4).is_err());
        assert!(shatter(&mut volume, 4, 0).is_err());
    }

    #[test]
    fn live_files_are_untouched() {
        let mut config = VolumeConfig::new(64 * MB);
        config.mft_zone_fraction = 0.0;
        let mut volume = Volume::format(config).unwrap();
        let receipt = volume.write_file("keep", 8 * MB, 64 * 1024).unwrap();
        let extents_before = volume.file(receipt.file_id).unwrap().extents.clone();
        shatter(&mut volume, 16, 16).unwrap();
        assert_eq!(
            volume.file(receipt.file_id).unwrap().extents,
            extents_before
        );
        // And the file still reads back in full.
        let plan = volume.read_plan(receipt.file_id).unwrap();
        assert_eq!(plan.iter().map(|r| r.len).sum::<u64>(), 8 * MB);
    }
}
