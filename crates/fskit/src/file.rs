//! File records: the extent map and logical size of each file.

use lor_alloc::{Extent, ExtentListExt};
use lor_disksim::ByteRun;
use serde::{Deserialize, Serialize};

/// Identifier of a file on a [`crate::Volume`].  Analogous to an MFT record
/// number: never reused within the lifetime of a volume.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FileId(pub u64);

impl std::fmt::Display for FileId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "file#{}", self.0)
    }
}

/// Metadata and extent map of one file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileRecord {
    /// Stable identifier.
    pub id: FileId,
    /// Name within the volume's single flat directory.
    pub name: String,
    /// Logical size in bytes.
    pub size_bytes: u64,
    /// Extent map in logical order (cluster units).
    pub extents: Vec<Extent>,
}

impl FileRecord {
    /// Creates an empty file record.
    pub fn new(id: FileId, name: impl Into<String>) -> Self {
        FileRecord {
            id,
            name: name.into(),
            size_bytes: 0,
            extents: Vec::new(),
        }
    }

    /// Number of clusters currently allocated to the file.
    pub fn allocated_clusters(&self) -> u64 {
        self.extents.total_clusters()
    }

    /// Number of physically discontiguous fragments ("1" means contiguous,
    /// matching the paper's definition: *contiguous objects have 1 fragment*).
    pub fn fragment_count(&self) -> usize {
        self.extents.fragment_count()
    }

    /// Appends newly allocated extents to the extent map, merging with the
    /// last extent when physically adjacent.
    pub fn push_extents(&mut self, new_extents: &[Extent]) {
        for extent in new_extents.iter().filter(|e| !e.is_empty()) {
            match self.extents.last_mut() {
                Some(last) if last.is_followed_by(extent) => last.len += extent.len,
                _ => self.extents.push(*extent),
            }
        }
    }

    /// The cluster just past the file's last allocated cluster, used as the
    /// extension hint for the next append.  `None` for an empty file.
    pub fn extension_hint(&self) -> Option<u64> {
        self.extents.last().map(|extent| extent.end())
    }

    /// The byte runs a sequential read of the whole file touches, given the
    /// volume's cluster size.  The final extent is clipped to the logical file
    /// size (the tail of the last cluster holds no file data).
    pub fn byte_runs(&self, cluster_size: u64) -> Vec<ByteRun> {
        let mut remaining = self.size_bytes;
        let mut runs = Vec::with_capacity(self.extents.len());
        for extent in &self.extents {
            if remaining == 0 {
                break;
            }
            let extent_bytes = extent.len * cluster_size;
            let take = extent_bytes.min(remaining);
            runs.push(ByteRun::new(extent.start * cluster_size, take));
            remaining -= take;
        }
        runs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_record_is_empty() {
        let record = FileRecord::new(FileId(7), "photo.jpg");
        assert_eq!(record.size_bytes, 0);
        assert_eq!(record.allocated_clusters(), 0);
        assert_eq!(record.fragment_count(), 0);
        assert_eq!(record.extension_hint(), None);
        assert!(record.byte_runs(4096).is_empty());
        assert_eq!(FileId(7).to_string(), "file#7");
    }

    #[test]
    fn push_extents_merges_adjacent_runs() {
        let mut record = FileRecord::new(FileId(1), "a");
        record.push_extents(&[Extent::new(10, 4)]);
        record.push_extents(&[Extent::new(14, 4)]);
        record.push_extents(&[Extent::new(30, 4), Extent::new(34, 2)]);
        assert_eq!(record.extents, vec![Extent::new(10, 8), Extent::new(30, 6)]);
        assert_eq!(record.fragment_count(), 2);
        assert_eq!(record.allocated_clusters(), 14);
        assert_eq!(record.extension_hint(), Some(36));
    }

    #[test]
    fn byte_runs_clip_to_logical_size() {
        let mut record = FileRecord::new(FileId(1), "a");
        record.push_extents(&[Extent::new(0, 2), Extent::new(10, 2)]);
        record.size_bytes = 3 * 4096 + 100; // last cluster only partially used
        let runs = record.byte_runs(4096);
        assert_eq!(runs, vec![ByteRun::new(0, 8192), ByteRun::new(40960, 4196)]);
        assert_eq!(runs.iter().map(|r| r.len).sum::<u64>(), record.size_bytes);
    }

    #[test]
    fn byte_runs_stop_when_size_is_reached() {
        let mut record = FileRecord::new(FileId(1), "a");
        record.push_extents(&[Extent::new(0, 2), Extent::new(10, 2)]);
        record.size_bytes = 4096; // only the first cluster holds data
        let runs = record.byte_runs(4096);
        assert_eq!(runs, vec![ByteRun::new(0, 4096)]);
    }
}
