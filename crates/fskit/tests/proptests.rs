//! Property tests for the filesystem simulator: random operation sequences
//! must preserve the volume's structural invariants.

use lor_alloc::{Extent, ExtentListExt};
use lor_fskit::{DefragCursor, Defragmenter, FileId, Volume, VolumeConfig};
use proptest::prelude::*;

const MB: u64 = 1 << 20;
const VOLUME_BYTES: u64 = 64 * MB;

/// Abstract workload operation against the volume.
#[derive(Debug, Clone)]
enum FsOp {
    /// Write a new object of `size` bytes in `chunk` byte requests.
    Put { size: u64, chunk: u64 },
    /// Safe-write (replace) the live object at this modular index with a new
    /// size.
    Replace { index: usize, size: u64 },
    /// Delete the live object at this modular index.
    Delete { index: usize },
    /// Run a manual checkpoint.
    Checkpoint,
    /// Defragment the live object at this modular index.
    Defrag { index: usize },
}

fn arb_op() -> impl Strategy<Value = FsOp> {
    prop_oneof![
        4 => (1u64..2 * MB, prop_oneof![Just(16 * 1024u64), Just(64 * 1024), Just(256 * 1024)])
            .prop_map(|(size, chunk)| FsOp::Put { size, chunk }),
        3 => (0usize..64, 1u64..2 * MB).prop_map(|(index, size)| FsOp::Replace { index, size }),
        2 => (0usize..64).prop_map(|index| FsOp::Delete { index }),
        1 => Just(FsOp::Checkpoint),
        1 => (0usize..64).prop_map(|index| FsOp::Defrag { index }),
    ]
}

/// Checks every structural invariant of the volume against a shadow model of
/// the live objects (name -> size).
fn check_invariants(volume: &Volume, live: &[(String, u64)]) -> Result<(), TestCaseError> {
    // Every live object is present with the right size, and nothing else is.
    prop_assert_eq!(volume.file_count(), live.len());
    let cluster = volume.cluster_size();
    let mut all_extents: Vec<Extent> = Vec::new();
    for (name, size) in live {
        let id = volume.lookup(name).expect("live object must resolve");
        let record = volume.file(id).expect("live object must have a record");
        prop_assert_eq!(record.size_bytes, *size);
        // Allocation is exactly the clusters needed to hold the bytes.
        prop_assert_eq!(record.allocated_clusters(), size.div_ceil(cluster));
        // The read plan covers every logical byte exactly once.
        let plan = volume.read_plan(id).unwrap();
        prop_assert_eq!(plan.iter().map(|r| r.len).sum::<u64>(), *size);
        all_extents.extend(record.extents.iter().copied());
    }
    // No two live files share a cluster.
    prop_assert!(all_extents.is_disjoint(), "live files must not overlap");
    // Accounting: allocated clusters = live clusters + pending clusters + MFT.
    let live_clusters: u64 = all_extents.total_clusters();
    let report = volume.free_space_report();
    let allocated = report.total_clusters - report.free_clusters;
    prop_assert_eq!(
        allocated,
        live_clusters + volume.pending_clusters() + volume.config().mft_clusters()
    );
    // The incremental fragmentation accounting answers exactly what a full
    // rescan of every live file would.
    prop_assert_eq!(volume.fragmentation(), volume.fragmentation_rescan());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_workloads_preserve_volume_invariants(ops in prop::collection::vec(arb_op(), 1..60)) {
        let mut config = VolumeConfig::new(VOLUME_BYTES);
        config.checkpoint_interval_ops = 4;
        let mut volume = Volume::format(config).unwrap();
        let mut live: Vec<(String, u64)> = Vec::new();
        let mut counter = 0u64;

        for op in ops {
            match op {
                FsOp::Put { size, chunk } => {
                    let name = format!("obj-{counter}");
                    counter += 1;
                    match volume.write_file(&name, size, chunk) {
                        Ok(receipt) => {
                            prop_assert_eq!(receipt.bytes_written, size);
                            prop_assert_eq!(
                                receipt.runs.iter().map(|r| r.len).sum::<u64>(),
                                size,
                                "write receipt must cover every byte"
                            );
                            live.push((name, size));
                        }
                        Err(_) => {
                            // Out of space is acceptable on a small volume; the
                            // failed create leaves an empty file behind only if
                            // fill failed, in which case clean it up.
                            if let Ok(id) = volume.lookup(&name) {
                                volume.delete(id).unwrap();
                            }
                        }
                    }
                }
                FsOp::Replace { index, size } => {
                    if live.is_empty() { continue; }
                    let slot = index % live.len();
                    let name = live[slot].0.clone();
                    match volume.safe_write(&name, size, 64 * 1024) {
                        Ok(_) => live[slot].1 = size,
                        Err(_) => {
                            // The original object must survive a failed safe write.
                            prop_assert!(volume.lookup(&name).is_ok());
                        }
                    }
                }
                FsOp::Delete { index } => {
                    if live.is_empty() { continue; }
                    let (name, _) = live.swap_remove(index % live.len());
                    volume.delete_by_name(&name).unwrap();
                }
                FsOp::Checkpoint => volume.checkpoint(),
                FsOp::Defrag { index } => {
                    if live.is_empty() { continue; }
                    let name = &live[index % live.len()].0;
                    let id = volume.lookup(name).unwrap();
                    let size_before = volume.file(id).unwrap().size_bytes;
                    let _ = Defragmenter::new().defragment_file(&mut volume, id);
                    prop_assert_eq!(volume.file(id).unwrap().size_bytes, size_before);
                }
            }
            check_invariants(&volume, &live)?;
        }

        // Final teardown: delete everything, checkpoint, and the volume must be
        // back to a clean state (only the MFT zone allocated).
        for (name, _) in live {
            volume.delete_by_name(&name).unwrap();
        }
        volume.checkpoint();
        let report = volume.free_space_report();
        prop_assert_eq!(report.free_clusters, report.total_clusters - volume.config().mft_clusters());
    }

    /// Safe-writing an object over and over must never leak space or change
    /// the object count, and fragment counts must stay bounded by the number
    /// of write requests (the paper's Figure 3 observation).
    #[test]
    fn repeated_safe_writes_bound_fragments_by_write_requests(
        object_kb in 64u64..512,
        rounds in 1usize..12,
    ) {
        let mut config = VolumeConfig::new(VOLUME_BYTES);
        config.checkpoint_interval_ops = 4;
        let mut volume = Volume::format(config).unwrap();
        let size = object_kb * 1024;
        let chunk = 64 * 1024u64;

        // A population of 32 objects, each overwritten `rounds` times.
        for i in 0..32 {
            volume.write_file(&format!("obj-{i}"), size, chunk).unwrap();
        }
        for _ in 0..rounds {
            for i in 0..32 {
                volume.safe_write(&format!("obj-{i}"), size, chunk).unwrap();
            }
        }
        prop_assert_eq!(volume.file_count(), 32);
        let max_possible = size.div_ceil(chunk).max(1);
        for record in volume.iter_files() {
            prop_assert!(
                (record.fragment_count() as u64) <= max_possible,
                "file has {} fragments but only {} write requests",
                record.fragment_count(),
                max_possible
            );
        }
    }

    /// Defragmenter invariants on randomly aged volumes: driving
    /// `defragment_step` to completion (any per-step budget) produces exactly
    /// the layout of one unlimited `defragment_volume` pass, and no step ever
    /// increases the volume's total fragment count.
    #[test]
    fn incremental_defrag_matches_the_volume_pass_on_aged_volumes(
        ops in prop::collection::vec(arb_op(), 10..80),
        step_budget_kb in 32u64..2048,
    ) {
        // Age a volume with a random workload (defrag ops in the stream just
        // add more layout churn before the comparison).
        let mut config = VolumeConfig::new(VOLUME_BYTES);
        config.checkpoint_interval_ops = 4;
        let mut volume = Volume::format(config).unwrap();
        let mut live: Vec<String> = Vec::new();
        let mut counter = 0u64;
        for op in ops {
            match op {
                FsOp::Put { size, chunk } => {
                    let name = format!("obj-{counter}");
                    counter += 1;
                    match volume.write_file(&name, size, chunk) {
                        Ok(_) => live.push(name),
                        Err(_) => {
                            if let Ok(id) = volume.lookup(&name) {
                                volume.delete(id).unwrap();
                            }
                        }
                    }
                }
                FsOp::Replace { index, size } => {
                    if live.is_empty() { continue; }
                    let name = live[index % live.len()].clone();
                    let _ = volume.safe_write(&name, size, 64 * 1024);
                }
                FsOp::Delete { index } => {
                    if live.is_empty() { continue; }
                    let name = live.swap_remove(index % live.len());
                    volume.delete_by_name(&name).unwrap();
                }
                FsOp::Checkpoint => volume.checkpoint(),
                FsOp::Defrag { index } => {
                    if live.is_empty() { continue; }
                    let id = volume.lookup(&live[index % live.len()]).unwrap();
                    let _ = Defragmenter::new().defragment_file(&mut volume, id);
                }
            }
        }

        let mut whole = volume.clone();
        let mut stepped = volume;
        let defragmenter = Defragmenter::new();

        let full_report = defragmenter.defragment_volume(&mut whole, 0).unwrap();

        let mut cursor = DefragCursor::new();
        let mut previous = stepped.fragmentation().total_fragments;
        let mut stepped_copied = 0u64;
        let mut steps = 0u64;
        while !cursor.is_done() {
            let report = defragmenter
                .defragment_step(&mut stepped, &mut cursor, step_budget_kb * 1024)
                .unwrap();
            stepped_copied += report.bytes_copied;
            let now = stepped.fragmentation().total_fragments;
            prop_assert!(now <= previous, "step increased fragments {previous} -> {now}");
            previous = now;
            steps += 1;
            prop_assert!(steps < 100_000, "incremental pass must terminate");
        }

        // Identical work and identical final layout, file by file.
        prop_assert_eq!(stepped_copied, full_report.bytes_copied);
        let whole_layouts: Vec<(FileId, Vec<Extent>)> = whole
            .iter_files()
            .map(|f| (f.id, f.extents.clone()))
            .collect();
        let stepped_layouts: Vec<(FileId, Vec<Extent>)> = stepped
            .iter_files()
            .map(|f| (f.id, f.extents.clone()))
            .collect();
        prop_assert_eq!(whole_layouts, stepped_layouts);
        prop_assert_eq!(
            whole.fragmentation().total_fragments,
            stepped.fragmentation().total_fragments
        );
    }
}

#[test]
fn file_ids_are_never_reused() {
    let mut volume = Volume::format(VolumeConfig::new(16 * MB)).unwrap();
    let mut seen = std::collections::HashSet::new();
    for round in 0..50 {
        let name = format!("f{round}");
        let receipt = volume.write_file(&name, 64 * 1024, 64 * 1024).unwrap();
        assert!(
            seen.insert(receipt.file_id),
            "FileId {:?} reused",
            receipt.file_id
        );
        volume.delete(receipt.file_id).unwrap();
    }
    assert_eq!(seen.len(), 50);
    let _ = FileId(0);
}

/// Operations for the placement proptest: the foreground workload plus
/// explicit budgeted incremental defragmentation steps.
#[derive(Debug, Clone)]
enum PlacedFsOp {
    /// Write a new object of `size` bytes (64 KB requests).
    Put { size: u64 },
    /// Safe-write the live object at this modular index.
    Replace { index: usize, size: u64 },
    /// Delete the live object at this modular index.
    Delete { index: usize },
    /// Run a manual checkpoint (the FS analogue of ghost cleanup).
    Checkpoint,
    /// Run one budgeted incremental defragmentation step.
    DefragStep { copy_budget: u64 },
}

fn arb_placed_fs_op() -> impl Strategy<Value = PlacedFsOp> {
    prop_oneof![
        4 => (1u64..2 * MB).prop_map(|size| PlacedFsOp::Put { size }),
        4 => (0usize..64, 1u64..2 * MB).prop_map(|(index, size)| PlacedFsOp::Replace { index, size }),
        2 => (0usize..64).prop_map(|index| PlacedFsOp::Delete { index }),
        2 => Just(PlacedFsOp::Checkpoint),
        3 => (0u64..512 * 1024).prop_map(|copy_budget| PlacedFsOp::DefragStep { copy_budget }),
    ]
}

/// The largest free run (in clusters) inside the foreground band.
fn foreground_band_largest(volume: &Volume, boundary: u64) -> u64 {
    volume
        .free_space()
        .largest_run_in(0, boundary)
        .map_or(0, |run| run.len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Under [`lor_alloc::PlacementPolicy::Banded`], an incremental
    /// defragmentation step never shrinks the foreground band's largest free
    /// run, whatever put/replace/delete/checkpoint/defrag sequence surrounds
    /// it: the defragmenter allocates only inside the maintenance band
    /// (refusing rather than spilling) and the extents it frees can only
    /// grow the foreground band.
    #[test]
    fn banded_defrag_never_shrinks_the_foreground_band(
        ops in prop::collection::vec(arb_placed_fs_op(), 1..60),
        boundary_fraction in prop_oneof![Just(0.5f64), Just(0.75), Just(0.9)],
    ) {
        let placement = lor_alloc::PlacementPolicy::banded(boundary_fraction);
        let mut config = VolumeConfig::new(VOLUME_BYTES);
        config.checkpoint_interval_ops = 0; // checkpoint only when the script says so
        config.placement = placement;
        let boundary = placement.boundary_cluster(config.total_clusters());
        let mut volume = Volume::format(config).unwrap();
        let defragmenter = Defragmenter::new();
        let mut cursor = DefragCursor::new();
        let mut live: Vec<String> = Vec::new();
        let mut next_name = 0u64;
        for op in ops {
            match op {
                PlacedFsOp::Put { size } => {
                    let name = format!("f{next_name}");
                    next_name += 1;
                    if volume.write_file(&name, size, 64 * 1024).is_ok() {
                        live.push(name);
                    }
                }
                PlacedFsOp::Replace { index, size } => {
                    if !live.is_empty() {
                        let name = live[index % live.len()].clone();
                        let _ = volume.safe_write(&name, size, 64 * 1024);
                    }
                }
                PlacedFsOp::Delete { index } => {
                    if !live.is_empty() {
                        let name = live.remove(index % live.len());
                        volume.delete_by_name(&name).unwrap();
                    }
                }
                PlacedFsOp::Checkpoint => volume.checkpoint(),
                PlacedFsOp::DefragStep { copy_budget } => {
                    if cursor.is_done() {
                        cursor.reset();
                    }
                    let before = foreground_band_largest(&volume, boundary);
                    defragmenter
                        .defragment_step(&mut volume, &mut cursor, copy_budget)
                        .unwrap();
                    let after = foreground_band_largest(&volume, boundary);
                    prop_assert!(
                        after >= before,
                        "defrag step shrank the foreground band's largest \
                         free run ({before} -> {after} clusters, boundary \
                         {boundary_fraction})"
                    );
                }
            }
        }
        // Every surviving object still reads back in full.
        for name in &live {
            let id = volume.lookup(name).unwrap();
            let record = volume.file(id).unwrap();
            let plan = volume.read_plan(id).unwrap();
            prop_assert_eq!(plan.iter().map(|r| r.len).sum::<u64>(), record.size_bytes);
        }
    }
}

/// One operation of the incremental-fragmentation equivalence workload: the
/// foreground mutation mix plus the maintenance paths (checkpoints and
/// budgeted defragmentation steps) that rewrite layouts outside the write
/// path.
#[derive(Debug, Clone)]
enum FragOp {
    Put { size: u64, chunk: u64 },
    Replace { index: usize, size: u64 },
    Delete { index: usize },
    Checkpoint,
    DefragStep { budget: u64 },
}

fn arb_frag_op() -> impl Strategy<Value = FragOp> {
    prop_oneof![
        4 => (1u64..2 * MB, prop_oneof![Just(16 * 1024u64), Just(64 * 1024), Just(256 * 1024)])
            .prop_map(|(size, chunk)| FragOp::Put { size, chunk }),
        4 => (0usize..64, 1u64..2 * MB).prop_map(|(index, size)| FragOp::Replace { index, size }),
        2 => (0usize..64).prop_map(|index| FragOp::Delete { index }),
        1 => Just(FragOp::Checkpoint),
        2 => (16u64 * 1024..512 * 1024).prop_map(|budget| FragOp::DefragStep { budget }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// After any sequence of writes, safe writes, deletes, checkpoints and
    /// budgeted defragmentation steps, the volume's O(1)-observable
    /// [`Volume::fragmentation`] is bit-identical to
    /// [`Volume::fragmentation_rescan`], the full walk over every live file
    /// it replaced.
    #[test]
    fn incremental_fragmentation_matches_full_rescan(
        ops in prop::collection::vec(arb_frag_op(), 1..80)
    ) {
        let mut config = VolumeConfig::new(VOLUME_BYTES);
        config.checkpoint_interval_ops = 4;
        let mut volume = Volume::format(config).unwrap();
        let mut names: Vec<String> = Vec::new();
        let mut counter = 0u64;
        let mut cursor = DefragCursor::new();

        for op in ops {
            match op {
                FragOp::Put { size, chunk } => {
                    let name = format!("obj-{counter}");
                    counter += 1;
                    match volume.write_file(&name, size, chunk) {
                        Ok(_) => names.push(name),
                        Err(_) => {
                            if let Ok(id) = volume.lookup(&name) {
                                volume.delete(id).unwrap();
                            }
                        }
                    }
                }
                FragOp::Replace { index, size } => {
                    if names.is_empty() { continue; }
                    let name = names[index % names.len()].clone();
                    let _ = volume.safe_write(&name, size, 64 * 1024);
                }
                FragOp::Delete { index } => {
                    if names.is_empty() { continue; }
                    let name = names.swap_remove(index % names.len());
                    volume.delete_by_name(&name).unwrap();
                }
                FragOp::Checkpoint => volume.checkpoint(),
                FragOp::DefragStep { budget } => {
                    if cursor.is_done() {
                        cursor.reset();
                    }
                    Defragmenter::new()
                        .defragment_step(&mut volume, &mut cursor, budget)
                        .unwrap();
                }
            }
            prop_assert_eq!(volume.fragmentation(), volume.fragmentation_rescan());
        }
    }
}
