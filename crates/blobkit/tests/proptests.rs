//! Property tests for the BLOB storage engine: random operation sequences
//! must preserve the engine's structural invariants.

use std::collections::BTreeMap;

use lor_blobkit::{AllocationUnit, Database, EngineConfig, Gam, PageId, PAGES_PER_EXTENT};
use lor_core_free_space_oracle::combined_free_runs;
use proptest::prelude::*;

/// Helpers for cross-validating the engine's run-indexed free-space maps
/// against the exhaustive bitmap oracle.
mod lor_core_free_space_oracle {
    use lor_alloc::{Extent, ExtentListExt, FreeSpace};
    use lor_blobkit::{AllocationUnit, Gam, PAGES_PER_EXTENT};

    /// The engine's page-granular free space, merged across its two levels:
    /// free pages inside the unit's assigned extents, plus every page of
    /// every unassigned extent in the GAM.  Returned sorted and coalesced,
    /// i.e. in the same canonical form `FreeSpace::free_runs` uses.
    pub fn combined_free_runs(unit: &AllocationUnit, gam: &Gam) -> Vec<Extent> {
        let mut runs: Vec<Extent> = unit.free_space().free_runs();
        runs.extend(
            gam.free_space()
                .free_runs()
                .into_iter()
                .map(|run| Extent::new(run.start * PAGES_PER_EXTENT, run.len * PAGES_PER_EXTENT)),
        );
        runs.sort_by_key(|run| run.start);
        runs.coalesced()
    }
}

const MB: u64 = 1 << 20;
const FILE_BYTES: u64 = 64 * MB;

#[derive(Debug, Clone)]
enum DbOp {
    /// Insert a new object of `size` bytes.
    Insert { size: u64 },
    /// Replace the live object at this modular index with a new version.
    Update { index: usize, size: u64 },
    /// Delete the live object at this modular index.
    Delete { index: usize },
    /// Run ghost cleanup now.
    Cleanup,
    /// Rebuild the table into a new filegroup.
    Rebuild,
}

fn arb_op() -> impl Strategy<Value = DbOp> {
    prop_oneof![
        4 => (1u64..2 * MB).prop_map(|size| DbOp::Insert { size }),
        3 => (0usize..64, 1u64..2 * MB).prop_map(|(index, size)| DbOp::Update { index, size }),
        2 => (0usize..64).prop_map(|index| DbOp::Delete { index }),
        1 => Just(DbOp::Cleanup),
        1 => Just(DbOp::Rebuild),
    ]
}

/// Verifies the engine against a shadow model (key -> size).
fn check_invariants(db: &Database, live: &BTreeMap<String, u64>) -> Result<(), TestCaseError> {
    prop_assert_eq!(db.object_count(), live.len());
    let mut seen_pages: std::collections::HashSet<PageId> = std::collections::HashSet::new();
    for (key, &size) in live {
        let record = db.get(key).expect("live key resolves");
        prop_assert_eq!(record.size_bytes, size);
        prop_assert_eq!(record.page_count(), db.config().pages_for(size));
        // No page is shared between live objects.
        for page in &record.pages {
            prop_assert!(seen_pages.insert(*page), "page {page} stored twice");
            prop_assert!(
                page.0 < db.config().total_pages(),
                "page {page} outside the data file"
            );
        }
        // The read plan covers exactly the object's pages.
        let plan = db.read_plan(key).unwrap();
        let plan_bytes: u64 = plan.iter().map(|r| r.len).sum();
        prop_assert_eq!(plan_bytes, record.page_count() * db.config().page_size);
    }
    // The incremental fragmentation accounting answers exactly what a full
    // rescan of every live blob would.
    prop_assert_eq!(db.fragmentation(), db.fragmentation_rescan());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_workloads_preserve_engine_invariants(ops in prop::collection::vec(arb_op(), 1..60)) {
        let mut config = EngineConfig::new(FILE_BYTES);
        config.ghost_cleanup_interval_ops = 4;
        let mut db = Database::create(config).unwrap();
        let mut live: BTreeMap<String, u64> = BTreeMap::new();
        let mut counter = 0u64;

        for op in ops {
            match op {
                DbOp::Insert { size } => {
                    let key = format!("obj-{counter}");
                    counter += 1;
                    match db.insert(&key, size) {
                        Ok(receipt) => {
                            prop_assert_eq!(receipt.bytes_written, size);
                            prop_assert_eq!(receipt.pages_written, db.config().pages_for(size));
                            live.insert(key, size);
                        }
                        Err(_) => {
                            prop_assert!(db.get(&key).is_err(), "failed insert must leave no trace");
                        }
                    }
                }
                DbOp::Update { index, size } => {
                    if live.is_empty() { continue; }
                    let key = live.keys().nth(index % live.len()).unwrap().clone();
                    match db.update(&key, size) {
                        Ok(_) => { live.insert(key, size); }
                        Err(_) => {
                            // The old version must survive a failed update.
                            prop_assert!(db.get(&key).is_ok());
                            prop_assert_eq!(db.get(&key).unwrap().size_bytes, live[&key]);
                        }
                    }
                }
                DbOp::Delete { index } => {
                    if live.is_empty() { continue; }
                    let key = live.keys().nth(index % live.len()).unwrap().clone();
                    db.delete(&key).unwrap();
                    live.remove(&key);
                }
                DbOp::Cleanup => db.ghost_cleanup(),
                DbOp::Rebuild => {
                    let copied = db.rebuild_into_new_filegroup().unwrap();
                    prop_assert_eq!(copied, live.values().sum::<u64>());
                    // A rebuild leaves every object contiguous.
                    for key in live.keys() {
                        prop_assert_eq!(db.get(key).unwrap().fragment_count(), 1);
                    }
                }
            }
            check_invariants(&db, &live)?;
        }

        // Teardown: delete everything, clean up, and the whole file is free again.
        let keys: Vec<String> = live.keys().cloned().collect();
        for key in keys {
            db.delete(&key).unwrap();
        }
        db.ghost_cleanup();
        prop_assert_eq!(db.object_count(), 0);
        prop_assert_eq!(db.ghost_page_count(), 0);
    }

    /// Storage accounting never loses pages: live + ghost + free == capacity.
    #[test]
    fn page_accounting_is_exact(sizes in prop::collection::vec(1u64..MB, 1..40)) {
        let mut config = EngineConfig::new(FILE_BYTES);
        config.ghost_cleanup_interval_ops = 1_000_000; // manual only
        let mut db = Database::create(config).unwrap();
        let mut inserted = Vec::new();
        for (i, size) in sizes.iter().enumerate() {
            let key = format!("k{i}");
            if db.insert(&key, *size).is_ok() {
                inserted.push(key);
            }
        }
        // Delete half of them (ghosts accumulate).
        for key in inserted.iter().step_by(2) {
            db.delete(key).unwrap();
        }
        let live_pages: u64 = db.iter_blobs().map(|b| b.page_count()).sum();
        prop_assert_eq!(
            db.stats().pages_allocated,
            live_pages + db.ghost_page_count(),
            "every allocated page is either live or a ghost before cleanup"
        );
        db.ghost_cleanup();
        prop_assert_eq!(db.ghost_page_count(), 0);
    }

    /// Bulk loads are laid out contiguously regardless of object size mix.
    #[test]
    fn bulk_load_is_contiguous(sizes in prop::collection::vec((64u64 * 1024)..MB, 1..32)) {
        let mut db = Database::create(EngineConfig::new(FILE_BYTES)).unwrap();
        for (i, size) in sizes.iter().enumerate() {
            db.insert(&format!("k{i}"), *size).unwrap();
        }
        let summary = db.fragmentation();
        prop_assert!(
            summary.fragments_per_object <= 1.0 + 1e-9,
            "bulk load produced {} fragments/object",
            summary.fragments_per_object
        );
    }
}

/// One operation of the engine's space-management workload, expressed at the
/// GAM/allocation-unit level so the same sequence can drive a [`BitmapMap`]
/// oracle in lock-step.
#[derive(Debug, Clone)]
enum SpaceOp {
    /// Insert: allocate pages for a new object.
    Insert { pages: u64 },
    /// Update: allocate pages for the replacement version first (as the
    /// transactional update must), then ghost-free the old version's pages.
    Update { index: usize, pages: u64 },
    /// Ghost cleanup of a deleted object: free its pages.
    Cleanup { index: usize },
}

fn arb_space_op() -> impl Strategy<Value = SpaceOp> {
    prop_oneof![
        4 => (1u64..48).prop_map(|pages| SpaceOp::Insert { pages }),
        3 => (0usize..64, 1u64..48).prop_map(|(index, pages)| SpaceOp::Update { index, pages }),
        2 => (0usize..64).prop_map(|index| SpaceOp::Cleanup { index }),
    ]
}

/// Drives one GAM + allocation unit under `policy` through an op sequence in
/// lock-step with the exhaustive [`BitmapMap`] oracle (see the proptest
/// below).
fn check_against_oracle(
    policy: lor_alloc::AllocationPolicy,
    ops: &[SpaceOp],
) -> Result<(), TestCaseError> {
    use lor_alloc::{BitmapMap, Extent, FreeSpace};

    const TOTAL_EXTENTS: u64 = 64;
    const TOTAL_PAGES: u64 = TOTAL_EXTENTS * PAGES_PER_EXTENT;

    let mut gam = Gam::with_policy(TOTAL_EXTENTS, policy);
    let mut unit = AllocationUnit::with_policy(lor_blobkit::PageKind::LobData, TOTAL_PAGES, policy);
    let mut oracle = BitmapMap::new_free(TOTAL_PAGES);
    let mut live: Vec<Vec<PageId>> = Vec::new();

    for op in ops.iter().cloned() {
        match op {
            SpaceOp::Insert { pages } => {
                if let Ok(allocated) = unit.allocate_pages(&mut gam, pages) {
                    for page in &allocated {
                        oracle
                            .reserve(Extent::new(page.0, 1))
                            .expect("oracle agrees the page was free");
                    }
                    live.push(allocated);
                }
            }
            SpaceOp::Update { index, pages } => {
                if live.is_empty() {
                    continue;
                }
                let slot = index % live.len();
                if let Ok(allocated) = unit.allocate_pages(&mut gam, pages) {
                    for page in &allocated {
                        oracle
                            .reserve(Extent::new(page.0, 1))
                            .expect("oracle agrees the page was free");
                    }
                    let ghosts = std::mem::replace(&mut live[slot], allocated);
                    for page in ghosts {
                        unit.free_page(&mut gam, page);
                        oracle
                            .release(Extent::new(page.0, 1))
                            .expect("oracle agrees the page was used");
                    }
                }
            }
            SpaceOp::Cleanup { index } => {
                if live.is_empty() {
                    continue;
                }
                let ghosts = live.swap_remove(index % live.len());
                for page in ghosts {
                    unit.free_page(&mut gam, page);
                    oracle
                        .release(Extent::new(page.0, 1))
                        .expect("oracle agrees the page was used");
                }
            }
        }

        // The two run-indexed levels, merged, must agree exactly with the
        // exhaustive bitmap.
        prop_assert_eq!(
            unit.free_page_count() + gam.free_extent_count() * PAGES_PER_EXTENT,
            oracle.free_clusters(),
            "free-page accounting diverged from the oracle"
        );
        prop_assert_eq!(combined_free_runs(&unit, &gam), oracle.free_runs());
        // Structural invariant of the split: a unit page is free only
        // inside an assigned extent, never in a GAM-free one.
        for run in unit.free_space().free_runs() {
            for extent in gam.free_space().free_runs() {
                let extent_pages = Extent::new(
                    extent.start * PAGES_PER_EXTENT,
                    extent.len * PAGES_PER_EXTENT,
                );
                prop_assert!(
                    !run.overlaps(&extent_pages),
                    "unit and GAM both claim pages free"
                );
            }
        }
    }

    // Teardown: free everything and both levels drain back to fully free.
    for object in live.drain(..) {
        for page in object {
            unit.free_page(&mut gam, page);
            oracle
                .release(Extent::new(page.0, 1))
                .expect("oracle agrees the page was used");
        }
    }
    prop_assert_eq!(gam.free_extent_count(), TOTAL_EXTENTS);
    prop_assert_eq!(unit.free_page_count(), 0);
    prop_assert_eq!(oracle.free_runs(), vec![Extent::new(0, TOTAL_PAGES)]);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The run-indexed maps the engine's space management now sits on stay
    /// equivalent to the exhaustive [`BitmapMap`] oracle under blobkit's
    /// insert / update / ghost-cleanup sequences — under every selectable
    /// allocation policy, not just the native lowest-first one.
    #[test]
    fn unit_free_space_matches_bitmap_oracle(ops in prop::collection::vec(arb_space_op(), 1..80)) {
        for policy in lor_alloc::AllocationPolicy::ALL {
            check_against_oracle(policy, &ops)?;
        }
    }
}

/// Operations for the placement proptest: the foreground workload plus
/// explicit budgeted compaction steps.
#[derive(Debug, Clone)]
enum PlacedOp {
    /// Insert a new object of `size` bytes.
    Insert { size: u64 },
    /// Replace the live object at this modular index with a new version.
    Update { index: usize, size: u64 },
    /// Delete the live object at this modular index.
    Delete { index: usize },
    /// Run ghost cleanup now.
    Cleanup,
    /// Run one budgeted compaction step.
    Compact { page_budget: u64 },
}

fn arb_placed_op() -> impl Strategy<Value = PlacedOp> {
    prop_oneof![
        4 => (1u64..2 * MB).prop_map(|size| PlacedOp::Insert { size }),
        4 => (0usize..64, 1u64..2 * MB).prop_map(|(index, size)| PlacedOp::Update { index, size }),
        2 => (0usize..64).prop_map(|index| PlacedOp::Delete { index }),
        2 => Just(PlacedOp::Cleanup),
        3 => (0u64..256).prop_map(|page_budget| PlacedOp::Compact { page_budget }),
    ]
}

/// The largest free run (in pages) inside the foreground band, measured on
/// the combined page-level availability (unit free pages plus unassigned GAM
/// extents) clipped to `[0, boundary_page)`.
fn foreground_band_largest(db: &Database, boundary_page: u64) -> u64 {
    combined_free_runs(db.lob_unit(), db.gam())
        .into_iter()
        .filter_map(|run| {
            let end = run.end().min(boundary_page);
            end.checked_sub(run.start).filter(|len| *len > 0)
        })
        .max()
        .unwrap_or(0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Under [`lor_alloc::PlacementPolicy::Banded`], a compaction step never
    /// shrinks the foreground band's largest free run, whatever
    /// insert/update/ghost-cleanup/compact sequence surrounds it: the
    /// compactor reserves only inside the maintenance band (refusing rather
    /// than spilling) and its frees can only grow the foreground band.
    #[test]
    fn banded_compaction_never_shrinks_the_foreground_band(
        ops in prop::collection::vec(arb_placed_op(), 1..60),
        boundary in prop_oneof![Just(0.5f64), Just(0.75), Just(0.9)],
    ) {
        let placement = lor_alloc::PlacementPolicy::banded(boundary);
        let mut config = EngineConfig::new(FILE_BYTES);
        config.ghost_cleanup_interval_ops = 0; // cleanup only when the script says so
        config.placement = placement;
        let boundary_page =
            placement.boundary_cluster(config.total_extents()) * PAGES_PER_EXTENT;
        let mut db = Database::create(config).unwrap();
        let mut live: Vec<String> = Vec::new();
        let mut next_key = 0u64;
        for op in ops {
            match op {
                PlacedOp::Insert { size } => {
                    let key = format!("k{next_key}");
                    next_key += 1;
                    if db.insert(&key, size).is_ok() {
                        live.push(key);
                    }
                }
                PlacedOp::Update { index, size } => {
                    if !live.is_empty() {
                        let key = live[index % live.len()].clone();
                        let _ = db.update(&key, size);
                    }
                }
                PlacedOp::Delete { index } => {
                    if !live.is_empty() {
                        let key = live.remove(index % live.len());
                        db.delete(&key).unwrap();
                    }
                }
                PlacedOp::Cleanup => db.ghost_cleanup(),
                PlacedOp::Compact { page_budget } => {
                    let before = foreground_band_largest(&db, boundary_page);
                    db.compact_step(page_budget);
                    let after = foreground_band_largest(&db, boundary_page);
                    prop_assert!(
                        after >= before,
                        "compact step shrank the foreground band's largest \
                         free run ({before} -> {after} pages, boundary {boundary})"
                    );
                }
            }
        }
        // Every surviving object still reads back in full.
        for key in &live {
            let plan = db.read_plan(key).unwrap();
            prop_assert!(plan.iter().map(|r| r.len).sum::<u64>() > 0);
        }
    }
}

/// One operation of the incremental-fragmentation equivalence workload: the
/// foreground mutation mix plus every maintenance path that rewrites layouts
/// behind the tracker's back if a bookkeeping site is missed.
#[derive(Debug, Clone)]
enum FragOp {
    Insert { size: u64 },
    Update { index: usize, size: u64 },
    Delete { index: usize },
    CleanupLimited { pages: u64 },
    Compact { page_budget: u64 },
    Rebuild,
}

fn arb_frag_op() -> impl Strategy<Value = FragOp> {
    prop_oneof![
        4 => (1u64..2 * MB).prop_map(|size| FragOp::Insert { size }),
        4 => (0usize..64, 1u64..2 * MB).prop_map(|(index, size)| FragOp::Update { index, size }),
        2 => (0usize..64).prop_map(|index| FragOp::Delete { index }),
        2 => (1u64..64).prop_map(|pages| FragOp::CleanupLimited { pages }),
        2 => (1u64..64).prop_map(|page_budget| FragOp::Compact { page_budget }),
        1 => Just(FragOp::Rebuild),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// After any sequence of inserts, updates, deletes, budgeted ghost
    /// cleanups, budgeted compaction steps and filegroup rebuilds, the
    /// engine's O(1)-observable [`Database::fragmentation`] is bit-identical
    /// to [`Database::fragmentation_rescan`], the full walk over every live
    /// blob it replaced.
    #[test]
    fn incremental_fragmentation_matches_full_rescan(
        ops in prop::collection::vec(arb_frag_op(), 1..80)
    ) {
        let mut config = EngineConfig::new(FILE_BYTES);
        config.ghost_cleanup_interval_ops = 1_000_000; // cleanups only where the op says
        let mut db = Database::create(config).unwrap();
        let mut keys: Vec<String> = Vec::new();
        let mut counter = 0u64;

        for op in ops {
            match op {
                FragOp::Insert { size } => {
                    let key = format!("obj-{counter}");
                    counter += 1;
                    if db.insert(&key, size).is_ok() {
                        keys.push(key);
                    }
                }
                FragOp::Update { index, size } => {
                    if keys.is_empty() { continue; }
                    let key = keys[index % keys.len()].clone();
                    let _ = db.update(&key, size);
                }
                FragOp::Delete { index } => {
                    if keys.is_empty() { continue; }
                    let key = keys.swap_remove(index % keys.len());
                    db.delete(&key).unwrap();
                }
                FragOp::CleanupLimited { pages } => {
                    db.ghost_cleanup_limited(pages);
                }
                FragOp::Compact { page_budget } => {
                    db.compact_step(page_budget);
                }
                FragOp::Rebuild => {
                    db.rebuild_into_new_filegroup().unwrap();
                }
            }
            prop_assert_eq!(db.fragmentation(), db.fragmentation_rescan());
        }
    }
}
