//! Database engine error type.

use std::fmt;

/// Errors returned by the BLOB storage engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// An object with this key already exists.
    KeyExists(String),
    /// No object with this key exists.
    NoSuchKey(String),
    /// The data file has no free pages left (even after ghost cleanup).
    OutOfSpace {
        /// Pages requested.
        requested_pages: u64,
        /// Pages currently free (including unassigned extents).
        free_pages: u64,
    },
    /// The engine configuration is unusable.
    BadConfig(&'static str),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::KeyExists(key) => write!(f, "an object with key {key:?} already exists"),
            DbError::NoSuchKey(key) => write!(f, "no object with key {key:?}"),
            DbError::OutOfSpace {
                requested_pages,
                free_pages,
            } => {
                write!(
                    f,
                    "data file out of space: requested {requested_pages} pages, {free_pages} free"
                )
            }
            DbError::BadConfig(what) => write!(f, "bad engine configuration: {what}"),
        }
    }
}

impl std::error::Error for DbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_identify_the_problem() {
        assert!(DbError::KeyExists("k".into())
            .to_string()
            .contains("already exists"));
        assert!(DbError::NoSuchKey("k".into())
            .to_string()
            .contains("no object"));
        assert!(DbError::OutOfSpace {
            requested_pages: 9,
            free_pages: 1
        }
        .to_string()
        .contains("9 pages"));
        assert!(DbError::BadConfig("x").to_string().contains("x"));
    }
}
