//! # lor-blobkit — a SQL-Server-like BLOB storage engine simulator
//!
//! The second storage substrate measured by the CIDR 2007 paper is SQL Server
//! 2005 storing application objects as out-of-row BLOBs in bulk-logged mode.
//! This crate reproduces the storage-engine mechanics the paper holds
//! responsible for the database's fragmentation behaviour:
//!
//! * an 8 KB-page / 64 KB-extent data file with GAM/IAM-style space
//!   management ([`Gam`], [`AllocationUnit`]);
//! * out-of-row BLOB storage as ordered leaf-page lists ([`BlobRecord`],
//!   the Exodus-style design the paper cites);
//! * a clustered metadata table whose rows stay small and cached;
//! * wholesale-replacement updates whose old versions become ghosts, cleaned
//!   up asynchronously, after which their pages — reused lowest-first —
//!   gradually interleave objects and drive the near-linear growth of
//!   fragments per object the paper measures (Figure 2);
//! * the recommended defragmentation procedure: copying the table into a new
//!   filegroup ([`Database::rebuild_into_new_filegroup`]).
//!
//! ## Example
//!
//! ```
//! use lor_blobkit::{Database, EngineConfig};
//!
//! let mut db = Database::create(EngineConfig::new(256 << 20)).unwrap();
//! db.insert("photo-0001", 1 << 20).unwrap();
//!
//! // A bulk-loaded BLOB is laid out contiguously...
//! assert_eq!(db.get("photo-0001").unwrap().fragment_count(), 1);
//!
//! // ...and wholesale replacement is the BLOB analogue of a safe write.
//! db.update("photo-0001", 1 << 20).unwrap();
//! assert_eq!(db.object_count(), 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod allocation;
mod blob;
mod engine;
mod error;
mod page;

pub use allocation::{AllocationUnit, Gam};
pub use blob::{BlobId, BlobRecord};
pub use engine::{CompactReport, Database, DbWriteReceipt, EngineConfig, EngineStats};
pub use error::DbError;
pub use page::{fragment_count, page_runs, ExtentId, PageId, PageKind, PAGES_PER_EXTENT};
