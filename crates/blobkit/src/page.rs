//! Pages and extents: the database engine's units of space.
//!
//! Following SQL Server's layout, the data file is an array of 8 KB pages
//! grouped into extents of 8 pages (64 KB).  BLOB data lives on dedicated
//! LOB pages whose payload is slightly smaller than the page (headers,
//! record overhead), which is one of the reasons a database BLOB occupies a
//! little more disk than the same object stored as a file.

use serde::{Deserialize, Serialize};

/// Pages per extent (SQL Server: 8).
pub const PAGES_PER_EXTENT: u64 = 8;

/// Identifier of a page within the data file (zero-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PageId(pub u64);

impl PageId {
    /// The extent this page belongs to.
    pub const fn extent(self) -> ExtentId {
        ExtentId(self.0 / PAGES_PER_EXTENT)
    }

    /// Position of the page within its extent (`0..PAGES_PER_EXTENT`).
    pub const fn slot_in_extent(self) -> u64 {
        self.0 % PAGES_PER_EXTENT
    }

    /// `true` if `other` is the page physically following `self`.
    pub const fn is_followed_by(self, other: PageId) -> bool {
        other.0 == self.0 + 1
    }
}

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "page:{}", self.0)
    }
}

/// Identifier of an extent (group of [`PAGES_PER_EXTENT`] pages).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ExtentId(pub u64);

impl ExtentId {
    /// First page of the extent.
    pub const fn first_page(self) -> PageId {
        PageId(self.0 * PAGES_PER_EXTENT)
    }

    /// Iterator over the pages of the extent.
    pub fn pages(self) -> impl Iterator<Item = PageId> {
        (0..PAGES_PER_EXTENT).map(move |slot| PageId(self.0 * PAGES_PER_EXTENT + slot))
    }
}

impl std::fmt::Display for ExtentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "extent:{}", self.0)
    }
}

/// What a page is used for.  Only the distinctions the experiments need are
/// modelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PageKind {
    /// Out-of-row BLOB data (SQL Server `LOB_DATA`).
    LobData,
    /// Clustered-index rows of the metadata table (`IN_ROW_DATA`).
    RowData,
    /// Allocation metadata (GAM/IAM), charged to the engine itself.
    AllocationMap,
}

/// Counts runs of physically consecutive pages — the database-side equivalent
/// of a file's fragment count.  An empty list has zero fragments; a contiguous
/// list has one.
pub fn fragment_count(pages: &[PageId]) -> usize {
    let mut fragments = 0;
    let mut previous: Option<PageId> = None;
    for &page in pages {
        match previous {
            Some(prev) if prev.is_followed_by(page) => {}
            _ => fragments += 1,
        }
        previous = Some(page);
    }
    fragments
}

/// Groups a logical page list into physically contiguous `(first_page, count)`
/// runs, preserving logical order.
pub fn page_runs(pages: &[PageId]) -> Vec<(PageId, u64)> {
    let mut runs: Vec<(PageId, u64)> = Vec::new();
    for &page in pages {
        match runs.last_mut() {
            Some((first, count)) if PageId(first.0 + *count - 1).is_followed_by(page) => {
                *count += 1
            }
            _ => runs.push((page, 1)),
        }
    }
    runs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_extent_mapping() {
        assert_eq!(PageId(0).extent(), ExtentId(0));
        assert_eq!(PageId(7).extent(), ExtentId(0));
        assert_eq!(PageId(8).extent(), ExtentId(1));
        assert_eq!(PageId(17).slot_in_extent(), 1);
        assert_eq!(ExtentId(2).first_page(), PageId(16));
        let pages: Vec<PageId> = ExtentId(1).pages().collect();
        assert_eq!(pages.len(), PAGES_PER_EXTENT as usize);
        assert_eq!(pages[0], PageId(8));
        assert_eq!(pages[7], PageId(15));
    }

    #[test]
    fn adjacency() {
        assert!(PageId(5).is_followed_by(PageId(6)));
        assert!(!PageId(5).is_followed_by(PageId(7)));
        assert!(!PageId(5).is_followed_by(PageId(5)));
    }

    #[test]
    fn fragment_counting() {
        assert_eq!(fragment_count(&[]), 0);
        assert_eq!(fragment_count(&[PageId(3)]), 1);
        assert_eq!(fragment_count(&[PageId(3), PageId(4), PageId(5)]), 1);
        assert_eq!(fragment_count(&[PageId(3), PageId(5), PageId(6)]), 2);
        assert_eq!(fragment_count(&[PageId(9), PageId(3), PageId(4)]), 2);
    }

    #[test]
    fn run_grouping() {
        let runs = page_runs(&[
            PageId(3),
            PageId(4),
            PageId(10),
            PageId(11),
            PageId(12),
            PageId(2),
        ]);
        assert_eq!(runs, vec![(PageId(3), 2), (PageId(10), 3), (PageId(2), 1)]);
        assert!(page_runs(&[]).is_empty());
    }

    #[test]
    fn display_formats() {
        assert_eq!(PageId(4).to_string(), "page:4");
        assert_eq!(ExtentId(9).to_string(), "extent:9");
    }
}
