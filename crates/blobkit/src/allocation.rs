//! GAM/IAM-style space management for the data file.
//!
//! SQL Server tracks which 64 KB extents of a data file are allocated (the
//! Global Allocation Map) and which extents belong to each allocation unit
//! (the Index Allocation Map chain).  The reproduction keeps the same
//! two-level structure because it is what produces the database's
//! characteristic fragmentation behaviour:
//!
//! * space is reused **lowest page first** (first fit over the page space), so
//!   pages freed by deleted BLOBs anywhere in the file are filled before the
//!   file's tail is touched — which is what gradually interleaves objects as
//!   the store ages;
//! * an object being streamed in keeps **appending to the page that follows
//!   its previous one** whenever that page is free (or its extent can be
//!   assigned), so a bulk load onto a clean file lays every object out
//!   contiguously;
//! * pages freed inside an extent are only reusable by the same allocation
//!   unit until the whole extent empties, at which point the extent returns to
//!   the GAM.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::error::DbError;
use crate::page::{ExtentId, PageId, PageKind, PAGES_PER_EXTENT};

/// The Global Allocation Map: which extents of the data file are unassigned.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Gam {
    total_extents: u64,
    free_extents: BTreeSet<ExtentId>,
}

impl Gam {
    /// Creates a GAM over a data file of `total_extents` extents, all free.
    pub fn new(total_extents: u64) -> Self {
        Gam { total_extents, free_extents: (0..total_extents).map(ExtentId).collect() }
    }

    /// Total extents in the data file.
    pub fn total_extents(&self) -> u64 {
        self.total_extents
    }

    /// Unassigned extents remaining.
    pub fn free_extent_count(&self) -> u64 {
        self.free_extents.len() as u64
    }

    /// Assigns the lowest-numbered free extent (first fit at extent
    /// granularity).
    pub fn assign_lowest(&mut self) -> Option<ExtentId> {
        let extent = *self.free_extents.iter().next()?;
        self.free_extents.remove(&extent);
        Some(extent)
    }

    /// Assigns a specific extent if it is free.  Used to continue an object's
    /// layout into the physically next extent.
    pub fn assign_specific(&mut self, extent: ExtentId) -> bool {
        self.free_extents.remove(&extent)
    }

    /// The lowest-numbered free extent, without assigning it.
    pub fn peek_lowest(&self) -> Option<ExtentId> {
        self.free_extents.iter().next().copied()
    }

    /// Assigns the highest-numbered free extent.  Used for metadata pages so
    /// that the clustered index does not decluster the BLOB data it describes
    /// (the paper's out-of-row rationale, Section 4.2).
    pub fn assign_highest(&mut self) -> Option<ExtentId> {
        let extent = *self.free_extents.iter().next_back()?;
        self.free_extents.remove(&extent);
        Some(extent)
    }

    /// Returns an extent to the free pool.
    ///
    /// # Panics
    /// Panics if the extent is already free (double release is an engine bug).
    pub fn release(&mut self, extent: ExtentId) {
        assert!(extent.0 < self.total_extents, "extent {extent} outside the data file");
        let inserted = self.free_extents.insert(extent);
        assert!(inserted, "extent {extent} released twice");
    }

    /// `true` if the extent is currently unassigned.
    pub fn is_free(&self, extent: ExtentId) -> bool {
        self.free_extents.contains(&extent)
    }
}

/// One allocation unit (e.g. the LOB_DATA unit of the object table).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AllocationUnit {
    kind: PageKind,
    /// Extents assigned to this unit (the IAM chain).
    extents: BTreeSet<ExtentId>,
    /// Pages within assigned extents that currently hold no data.
    free_pages: BTreeSet<PageId>,
    /// Pages within assigned extents that hold data.
    used_pages: u64,
}

impl AllocationUnit {
    /// Creates an empty allocation unit.
    pub fn new(kind: PageKind) -> Self {
        AllocationUnit { kind, extents: BTreeSet::new(), free_pages: BTreeSet::new(), used_pages: 0 }
    }

    /// The page kind stored in this unit.
    pub fn kind(&self) -> PageKind {
        self.kind
    }

    /// Number of extents assigned to the unit.
    pub fn extent_count(&self) -> u64 {
        self.extents.len() as u64
    }

    /// Pages holding data.
    pub fn used_pages(&self) -> u64 {
        self.used_pages
    }

    /// Free pages inside assigned extents.
    pub fn free_page_count(&self) -> u64 {
        self.free_pages.len() as u64
    }

    /// Pages the caller could still allocate without growing the file:
    /// free pages in assigned extents plus every page of every unassigned
    /// extent in the GAM.
    pub fn available_pages(&self, gam: &Gam) -> u64 {
        self.free_pages.len() as u64 + gam.free_extent_count() * PAGES_PER_EXTENT
    }

    /// Allocates `count` pages for one object streamed into the store.
    ///
    /// Strategy (see module docs): keep extending the run that ends at the
    /// previously allocated page — taking the next free page, or assigning the
    /// physically next extent when it is still unassigned — and when the run
    /// cannot be extended, start a new run at the lowest free page in the
    /// file (first fit), assigning the lowest unassigned extent if that is
    /// lower still.
    pub fn allocate_pages(&mut self, gam: &mut Gam, count: u64) -> Result<Vec<PageId>, DbError> {
        if count == 0 {
            return Ok(Vec::new());
        }
        if count > self.available_pages(gam) {
            return Err(DbError::OutOfSpace {
                requested_pages: count,
                free_pages: self.available_pages(gam),
            });
        }

        let mut pages: Vec<PageId> = Vec::with_capacity(count as usize);
        while (pages.len() as u64) < count {
            // 1. Try to continue the current run.
            if let Some(&last) = pages.last() {
                let next = PageId(last.0 + 1);
                if self.take_specific(gam, next) {
                    pages.push(next);
                    continue;
                }
            }
            // 2. Start a new run.  Free pages inside already-assigned extents
            //    are consumed before any fresh extent is assigned (the engine
            //    does not waste partially used extents), lowest page first;
            //    only when no such page exists is the lowest unassigned extent
            //    taken from the GAM.  This ordering is what seeds the paper's
            //    "constant-size objects still fragment" behaviour: the
            //    partially used extents left at object boundaries are soaked
            //    up by later allocations, which therefore start away from the
            //    extents that hold their bulk.
            let start = self
                .free_pages
                .iter()
                .next()
                .copied()
                .or_else(|| gam.peek_lowest().map(|e| e.first_page()))
                .expect("available_pages() guaranteed enough space");
            let taken = self.take_specific(gam, start);
            debug_assert!(taken, "the lowest free position must be takeable");
            pages.push(start);
        }
        Ok(pages)
    }

    /// Allocates `count` pages from the high end of the file: free pages in
    /// assigned extents highest-first, then the highest unassigned extents.
    ///
    /// Used for the metadata table's clustered-index pages so that the small,
    /// cached metadata structures never interrupt the BLOB data laid out from
    /// the front of the file.
    pub fn allocate_pages_high(&mut self, gam: &mut Gam, count: u64) -> Result<Vec<PageId>, DbError> {
        if count == 0 {
            return Ok(Vec::new());
        }
        if count > self.available_pages(gam) {
            return Err(DbError::OutOfSpace {
                requested_pages: count,
                free_pages: self.available_pages(gam),
            });
        }
        let mut pages = Vec::with_capacity(count as usize);
        while (pages.len() as u64) < count {
            if let Some(&page) = self.free_pages.iter().next_back() {
                self.free_pages.remove(&page);
                self.used_pages += 1;
                pages.push(page);
                continue;
            }
            let extent = gam.assign_highest().expect("available_pages() guaranteed enough space");
            self.extents.insert(extent);
            for p in extent.pages() {
                self.free_pages.insert(p);
            }
        }
        Ok(pages)
    }

    /// Takes one specific page if it is available (free in an assigned extent,
    /// or in an extent that can be assigned from the GAM).  Returns `true` on
    /// success.
    fn take_specific(&mut self, gam: &mut Gam, page: PageId) -> bool {
        if self.free_pages.remove(&page) {
            self.used_pages += 1;
            return true;
        }
        let extent = page.extent();
        if !self.extents.contains(&extent) && gam.assign_specific(extent) {
            self.extents.insert(extent);
            for p in extent.pages() {
                self.free_pages.insert(p);
            }
            let removed = self.free_pages.remove(&page);
            debug_assert!(removed);
            self.used_pages += 1;
            return true;
        }
        false
    }

    /// Frees one page, returning its extent to the GAM if the extent is now
    /// completely empty.
    pub fn free_page(&mut self, gam: &mut Gam, page: PageId) {
        let extent = page.extent();
        assert!(self.extents.contains(&extent), "page {page} freed outside the unit's extents");
        let inserted = self.free_pages.insert(page);
        assert!(inserted, "page {page} freed twice");
        self.used_pages -= 1;

        // If every page of the extent is free, hand the extent back.
        let all_free = extent.pages().all(|p| self.free_pages.contains(&p));
        if all_free {
            for p in extent.pages() {
                self.free_pages.remove(&p);
            }
            self.extents.remove(&extent);
            gam.release(extent);
        }
    }

    /// The extents currently assigned to this unit, ascending.
    pub fn extents(&self) -> impl Iterator<Item = ExtentId> + '_ {
        self.extents.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::fragment_count;

    #[test]
    fn gam_assigns_lowest_first() {
        let mut gam = Gam::new(10);
        assert_eq!(gam.free_extent_count(), 10);
        assert_eq!(gam.assign_lowest(), Some(ExtentId(0)));
        assert_eq!(gam.assign_lowest(), Some(ExtentId(1)));
        gam.release(ExtentId(0));
        assert_eq!(gam.assign_lowest(), Some(ExtentId(0)), "freed extents are reused before the file grows");
        assert!(gam.is_free(ExtentId(5)));
        assert!(!gam.is_free(ExtentId(1)));
        assert_eq!(gam.peek_lowest(), Some(ExtentId(2)));
    }

    #[test]
    fn gam_assign_specific() {
        let mut gam = Gam::new(10);
        assert!(gam.assign_specific(ExtentId(4)));
        assert!(!gam.assign_specific(ExtentId(4)), "already assigned");
        assert!(!gam.is_free(ExtentId(4)));
    }

    #[test]
    #[should_panic(expected = "released twice")]
    fn gam_double_release_panics() {
        let mut gam = Gam::new(4);
        gam.release(ExtentId(0));
    }

    #[test]
    fn clean_file_allocations_are_contiguous() {
        let mut gam = Gam::new(100);
        let mut unit = AllocationUnit::new(PageKind::LobData);
        let a = unit.allocate_pages(&mut gam, 20).unwrap();
        assert_eq!(a.len(), 20);
        assert_eq!(fragment_count(&a), 1);
        // The next object continues right after the previous one, sharing its
        // partially used extent.
        let b = unit.allocate_pages(&mut gam, 20).unwrap();
        assert_eq!(fragment_count(&b), 1);
        assert!(a.last().unwrap().is_followed_by(b[0]));
        assert_eq!(unit.used_pages(), 40);
        // 40 pages span extents 0..=4.
        assert_eq!(unit.extent_count(), 5);
    }

    #[test]
    fn freed_low_pages_are_reused_before_the_tail() {
        let mut gam = Gam::new(100);
        let mut unit = AllocationUnit::new(PageKind::LobData);
        let a = unit.allocate_pages(&mut gam, 16).unwrap();
        let _b = unit.allocate_pages(&mut gam, 16).unwrap();
        // Delete `a`: its two extents return to the GAM.
        for page in &a {
            unit.free_page(&mut gam, *page);
        }
        // A new 8-page object lands in the freed low extent, not at the tail.
        let c = unit.allocate_pages(&mut gam, 8).unwrap();
        assert_eq!(c[0], PageId(0));
        assert_eq!(fragment_count(&c), 1);
    }

    #[test]
    fn scattered_free_pages_fragment_new_objects() {
        let mut gam = Gam::new(100);
        let mut unit = AllocationUnit::new(PageKind::LobData);
        let a = unit.allocate_pages(&mut gam, 64).unwrap();
        // Free every other 4-page group of `a`, leaving 4-page holes.
        for chunk in a.chunks(8).map(|c| &c[..4]) {
            for page in chunk {
                unit.free_page(&mut gam, *page);
            }
        }
        // A 16-page object must span at least four of those holes.
        let b = unit.allocate_pages(&mut gam, 16).unwrap();
        assert!(fragment_count(&b) >= 4, "got {} fragments", fragment_count(&b));
        // And it fills the lowest holes first.
        assert_eq!(b[0], PageId(0));
    }

    #[test]
    fn freeing_a_whole_extent_returns_it_to_the_gam() {
        let mut gam = Gam::new(10);
        let mut unit = AllocationUnit::new(PageKind::LobData);
        let pages = unit.allocate_pages(&mut gam, 8).unwrap();
        assert_eq!(unit.extent_count(), 1);
        let before = gam.free_extent_count();
        for page in &pages {
            unit.free_page(&mut gam, *page);
        }
        assert_eq!(unit.extent_count(), 0);
        assert_eq!(unit.used_pages(), 0);
        assert_eq!(gam.free_extent_count(), before + 1);
    }

    #[test]
    fn partially_freed_extents_stay_with_the_unit() {
        let mut gam = Gam::new(10);
        let mut unit = AllocationUnit::new(PageKind::LobData);
        let pages = unit.allocate_pages(&mut gam, 8).unwrap();
        unit.free_page(&mut gam, pages[0]);
        assert_eq!(unit.extent_count(), 1);
        assert_eq!(unit.free_page_count(), 1);
        // The freed page is reused before any new extent is assigned.
        let next = unit.allocate_pages(&mut gam, 1).unwrap();
        assert_eq!(next[0], pages[0]);
    }

    #[test]
    fn out_of_space_is_detected() {
        let mut gam = Gam::new(2); // 16 pages total
        let mut unit = AllocationUnit::new(PageKind::LobData);
        assert!(unit.allocate_pages(&mut gam, 17).is_err());
        let pages = unit.allocate_pages(&mut gam, 10).unwrap();
        assert_eq!(pages.len(), 10);
        let err = unit.allocate_pages(&mut gam, 7).unwrap_err();
        assert!(matches!(err, DbError::OutOfSpace { requested_pages: 7, free_pages: 6 }));
        // The failed allocation must not have leaked anything.
        assert_eq!(unit.used_pages(), 10);
        assert_eq!(unit.available_pages(&gam), 6);
    }

    #[test]
    #[should_panic(expected = "freed twice")]
    fn double_free_panics() {
        let mut gam = Gam::new(2);
        let mut unit = AllocationUnit::new(PageKind::LobData);
        let pages = unit.allocate_pages(&mut gam, 4).unwrap();
        unit.free_page(&mut gam, pages[0]);
        unit.free_page(&mut gam, pages[0]);
    }

    #[test]
    fn zero_page_allocations_are_empty() {
        let mut gam = Gam::new(2);
        let mut unit = AllocationUnit::new(PageKind::RowData);
        assert!(unit.allocate_pages(&mut gam, 0).unwrap().is_empty());
        assert_eq!(unit.kind(), PageKind::RowData);
        assert_eq!(unit.extents().count(), 0);
    }
}
