//! GAM/IAM-style space management for the data file, on the shared
//! `lor-alloc` mechanism/policy split.
//!
//! SQL Server tracks which 64 KB extents of a data file are allocated (the
//! Global Allocation Map) and which extents belong to each allocation unit
//! (the Index Allocation Map chain).  The reproduction keeps the same
//! two-level structure because it is what produces the database's
//! characteristic fragmentation behaviour:
//!
//! * space is reused **lowest page first** (first fit over the page space), so
//!   pages freed by deleted BLOBs anywhere in the file are filled before the
//!   file's tail is touched — which is what gradually interleaves objects as
//!   the store ages;
//! * an object being streamed in keeps **appending to the page that follows
//!   its previous one** whenever that page is free (or its extent can be
//!   assigned), so a bulk load onto a clean file lays every object out
//!   contiguously;
//! * pages freed inside an extent are only reusable by the same allocation
//!   unit until the whole extent empties, at which point the extent returns to
//!   the GAM.
//!
//! Both levels are free-space bookkeeping, so both sit on
//! [`lor_alloc::RunIndexMap`] — the same mechanism the filesystem volume's
//! allocators use — rather than on private sets: the [`Gam`] is a run map at
//! extent granularity (free = unassigned), and each [`AllocationUnit`] holds a
//! run map at page granularity in which exactly the free pages *inside the
//! unit's assigned extents* are free.  Where a run must be *chosen* (a fresh
//! extent from the GAM, the start of a new page run inside the unit) the
//! choice is delegated to the shared [`FitPolicy`] implementation, selected
//! through [`AllocationPolicy`]: the paper-faithful native behaviour is
//! [`FitPolicy::FirstFit`] — lowest first — at both granularities, and the
//! ablation benches can swap in any other fit without touching the mechanism.

use std::collections::BTreeSet;

use lor_alloc::{
    AllocationPolicy, Extent, FitPicker, FitPolicy, FreeSpace, PlacementConsumer, PlacementPolicy,
    RunIndexMap,
};
use serde::{Deserialize, Serialize};

use crate::error::DbError;
use crate::page::{ExtentId, PageId, PageKind, PAGES_PER_EXTENT};

/// The fit the database's native policy applies: SQL Server reuses the lowest
/// free page / extent first.
const NATIVE_FIT: FitPolicy = FitPolicy::FirstFit;

/// The Global Allocation Map: which extents of the data file are unassigned.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Gam {
    /// Extent-granular free-space map; free means unassigned.
    map: RunIndexMap,
    /// Shared policy/next-fit-cursor implementation, in extent units.
    picker: FitPicker,
}

impl Gam {
    /// Creates a GAM over a data file of `total_extents` extents, all free,
    /// applying the native lowest-first policy.
    pub fn new(total_extents: u64) -> Self {
        Self::with_policy(total_extents, AllocationPolicy::Native)
    }

    /// Creates a GAM with an explicit allocation policy and unrestricted
    /// placement.
    pub fn with_policy(total_extents: u64, policy: AllocationPolicy) -> Self {
        Self::with_placement(total_extents, policy, PlacementPolicy::Unrestricted)
    }

    /// Creates a GAM with explicit allocation and placement policies.
    pub fn with_placement(
        total_extents: u64,
        policy: AllocationPolicy,
        placement: PlacementPolicy,
    ) -> Self {
        Gam {
            map: RunIndexMap::new_free(total_extents),
            picker: FitPicker::with_placement(policy, NATIVE_FIT, placement),
        }
    }

    /// Total extents in the data file.
    pub fn total_extents(&self) -> u64 {
        self.map.total_clusters()
    }

    /// Unassigned extents remaining.
    pub fn free_extent_count(&self) -> u64 {
        self.map.free_clusters()
    }

    /// The policy in effect.
    pub fn policy(&self) -> AllocationPolicy {
        self.picker.policy()
    }

    /// Read-only access to the extent-granular free-space map.
    pub fn free_space(&self) -> &RunIndexMap {
        &self.map
    }

    /// Assigns the policy-chosen free extent (for the native policy: the
    /// lowest-numbered one, i.e. first fit at extent granularity).
    pub fn assign_next(&mut self) -> Option<ExtentId> {
        let extent = self.peek_next()?;
        let taken = self.assign_specific(extent);
        debug_assert!(taken, "peeked extent must be assignable");
        Some(extent)
    }

    /// Assigns a specific extent if it is free.  Used to continue an object's
    /// layout into the physically next extent.
    pub fn assign_specific(&mut self, extent: ExtentId) -> bool {
        let taken = self.map.reserve(Extent::new(extent.0, 1)).is_ok();
        if taken {
            self.picker.advance(Extent::new(extent.0, 1));
        }
        taken
    }

    /// The extent [`Gam::assign_next`] would assign, without assigning it.
    pub fn peek_next(&self) -> Option<ExtentId> {
        self.picker
            .pick(&self.map, 1)
            .map(|run| ExtentId(run.start))
    }

    /// Assigns the highest-numbered free extent.  Used for metadata pages so
    /// that the clustered index does not decluster the BLOB data it describes
    /// (the paper's out-of-row rationale, Section 4.2).
    pub fn assign_highest(&mut self) -> Option<ExtentId> {
        let run = self.map.last_run()?;
        let extent = ExtentId(run.end() - 1);
        let taken = self.map.reserve(Extent::new(extent.0, 1)).is_ok();
        debug_assert!(taken, "the last run's final extent must be reservable");
        Some(extent)
    }

    /// Returns an extent to the free pool.
    ///
    /// # Panics
    /// Panics if the extent is already free (double release is an engine bug).
    pub fn release(&mut self, extent: ExtentId) {
        assert!(
            extent.0 < self.total_extents(),
            "extent {extent} outside the data file"
        );
        self.map
            .release(Extent::new(extent.0, 1))
            .unwrap_or_else(|_| panic!("extent {extent} released twice"));
    }

    /// `true` if the extent is currently unassigned.
    pub fn is_free(&self, extent: ExtentId) -> bool {
        self.map.is_free(Extent::new(extent.0, 1))
    }
}

/// One allocation unit (e.g. the LOB_DATA unit of the object table).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AllocationUnit {
    kind: PageKind,
    /// Extents assigned to this unit (the IAM chain).
    extents: BTreeSet<ExtentId>,
    /// Page-granular free-space map over the whole data file in which exactly
    /// the data-free pages of assigned extents are free; pages of unassigned
    /// extents count as allocated until the extent joins the unit.
    map: RunIndexMap,
    /// Shared policy/next-fit-cursor implementation, in page units.
    picker: FitPicker,
}

impl AllocationUnit {
    /// Creates an empty allocation unit over a data file of `total_pages`
    /// pages, applying the native lowest-first policy.
    pub fn new(kind: PageKind, total_pages: u64) -> Self {
        Self::with_policy(kind, total_pages, AllocationPolicy::Native)
    }

    /// Creates an empty allocation unit with an explicit allocation policy
    /// and unrestricted placement.
    pub fn with_policy(kind: PageKind, total_pages: u64, policy: AllocationPolicy) -> Self {
        Self::with_placement(kind, total_pages, policy, PlacementPolicy::Unrestricted)
    }

    /// Creates an empty allocation unit with explicit allocation and
    /// placement policies.
    pub fn with_placement(
        kind: PageKind,
        total_pages: u64,
        policy: AllocationPolicy,
        placement: PlacementPolicy,
    ) -> Self {
        AllocationUnit {
            kind,
            extents: BTreeSet::new(),
            map: RunIndexMap::new_allocated(total_pages),
            // The page space overlays the GAM's extent space: aligning the
            // band boundary to whole extents keeps the two granularities in
            // exact agreement on where the maintenance band starts (rounding
            // the fraction independently per granularity could let the
            // foreground and maintenance bands overlap by a few pages).
            picker: FitPicker::with_placement(policy, NATIVE_FIT, placement)
                .with_band_granule(PAGES_PER_EXTENT),
        }
    }

    /// The page kind stored in this unit.
    pub fn kind(&self) -> PageKind {
        self.kind
    }

    /// Number of extents assigned to the unit.
    pub fn extent_count(&self) -> u64 {
        self.extents.len() as u64
    }

    /// Pages holding data.
    pub fn used_pages(&self) -> u64 {
        self.extent_count() * PAGES_PER_EXTENT - self.free_page_count()
    }

    /// Free pages inside assigned extents.
    pub fn free_page_count(&self) -> u64 {
        self.map.free_clusters()
    }

    /// Read-only access to the page-granular free-space map (free = data-free
    /// page inside an assigned extent).
    pub fn free_space(&self) -> &RunIndexMap {
        &self.map
    }

    /// Pages the caller could still allocate without growing the file:
    /// free pages in assigned extents plus every page of every unassigned
    /// extent in the GAM.
    pub fn available_pages(&self, gam: &Gam) -> u64 {
        self.free_page_count() + gam.free_extent_count() * PAGES_PER_EXTENT
    }

    /// Allocates `count` pages for one object streamed into the store.
    ///
    /// Strategy (see module docs): keep extending the run that ends at the
    /// previously allocated page — taking the next free page, or assigning the
    /// physically next extent when it is still unassigned — and when the run
    /// cannot be extended, start a new run at the policy-chosen free page in
    /// the file (natively: the lowest, first fit), assigning a fresh extent
    /// from the GAM only when the unit has no free page of its own.
    pub fn allocate_pages(&mut self, gam: &mut Gam, count: u64) -> Result<Vec<PageId>, DbError> {
        if count == 0 {
            return Ok(Vec::new());
        }
        if count > self.available_pages(gam) {
            return Err(DbError::OutOfSpace {
                requested_pages: count,
                free_pages: self.available_pages(gam),
            });
        }

        let mut pages: Vec<PageId> = Vec::with_capacity(count as usize);
        while (pages.len() as u64) < count {
            let remaining = count - pages.len() as u64;
            // 1. Try to continue the current run — taking the whole overlap
            //    of the free run that begins right after the last page in one
            //    reservation, rather than a page at a time (the result is
            //    identical; only the free-map traffic shrinks).
            if let Some(&last) = pages.last() {
                let next = PageId(last.0 + 1);
                let took = self.take_run_at(gam, next, remaining);
                if took > 0 {
                    pages.extend((next.0..next.0 + took).map(PageId));
                    continue;
                }
            }
            // 2. Start a new run.  Free pages inside already-assigned extents
            //    are consumed before any fresh extent is assigned (the engine
            //    does not waste partially used extents), at the policy-chosen
            //    position — natively the lowest page first; only when no such
            //    page exists is a policy-chosen unassigned extent taken from
            //    the GAM.  This ordering is what seeds the paper's
            //    "constant-size objects still fragment" behaviour: the
            //    partially used extents left at object boundaries are soaked
            //    up by later allocations, which therefore start away from the
            //    extents that hold their bulk.
            let start = self
                .pick_page()
                .or_else(|| gam.peek_next().map(|extent| extent.first_page()))
                .expect("available_pages() guaranteed enough space");
            let took = self.take_run_at(gam, start, remaining);
            debug_assert!(took > 0, "the picked free position must be takeable");
            pages.extend((start.0..start.0 + took).map(PageId));
        }
        Ok(pages)
    }

    /// Allocates `count` pages from the high end of the file: free pages in
    /// assigned extents highest-first, then the highest unassigned extents.
    ///
    /// Used for the metadata table's clustered-index pages so that the small,
    /// cached metadata structures never interrupt the BLOB data laid out from
    /// the front of the file.
    pub fn allocate_pages_high(
        &mut self,
        gam: &mut Gam,
        count: u64,
    ) -> Result<Vec<PageId>, DbError> {
        if count == 0 {
            return Ok(Vec::new());
        }
        if count > self.available_pages(gam) {
            return Err(DbError::OutOfSpace {
                requested_pages: count,
                free_pages: self.available_pages(gam),
            });
        }
        let mut pages = Vec::with_capacity(count as usize);
        while (pages.len() as u64) < count {
            if let Some(run) = self.map.last_run() {
                let page = PageId(run.end() - 1);
                self.map
                    .reserve(Extent::new(page.0, 1))
                    .expect("the last run's final page is free");
                pages.push(page);
                continue;
            }
            let extent = gam
                .assign_highest()
                .expect("available_pages() guaranteed enough space");
            self.adopt_extent(extent);
        }
        Ok(pages)
    }

    /// Allocates `count` pages greedily from the largest free runs (the
    /// unit's own free space and unassigned GAM extent runs, whichever is
    /// larger), minimizing the number of physical runs in the result.
    ///
    /// This is the engine compaction's best-effort mode: when no single run
    /// can hold a whole blob ([`AllocationUnit::allocate_contiguous`] fails),
    /// the largest-first allocation still yields far fewer runs than the
    /// native lowest-first reuse, so an incremental compactor keeps making
    /// progress instead of stalling until cleanup happens to coalesce a big
    /// run.  Returns `None` — leaving all state untouched — only when the
    /// unit plus GAM cannot supply `count` pages at all.
    pub fn allocate_largest_runs(&mut self, gam: &mut Gam, count: u64) -> Option<Vec<PageId>> {
        if count == 0 {
            return Some(Vec::new());
        }
        if count > self.available_pages(gam) {
            return None;
        }
        let mut pages: Vec<PageId> = Vec::with_capacity(count as usize);
        while (pages.len() as u64) < count {
            let remaining = count - pages.len() as u64;
            let unit_run = self.map.largest();
            let gam_run = gam.free_space().largest();
            let unit_pages = unit_run.map_or(0, |run| run.len);
            let gam_pages = gam_run.map_or(0, |run| run.len * PAGES_PER_EXTENT);
            debug_assert!(
                unit_pages > 0 || gam_pages > 0,
                "available_pages() guaranteed enough space"
            );
            if unit_pages >= gam_pages {
                let run = unit_run.expect("unit run exists when unit_pages > 0");
                let take = run.len.min(remaining);
                let taken = Extent::new(run.start, take);
                self.map.reserve(taken).expect("largest unit run is free");
                self.picker.advance(taken);
                pages.extend((run.start..run.start + take).map(PageId));
            } else {
                let run = gam_run.expect("gam run exists when gam_pages > 0");
                let extents = remaining.div_ceil(PAGES_PER_EXTENT).min(run.len);
                for index in 0..extents {
                    let extent = ExtentId(run.start + index);
                    let taken = gam.assign_specific(extent);
                    debug_assert!(taken, "extents of a free GAM run are assignable");
                    self.adopt_extent(extent);
                }
                let first = ExtentId(run.start).first_page().0;
                let take = (extents * PAGES_PER_EXTENT).min(remaining);
                let taken = Extent::new(first, take);
                self.map
                    .reserve(taken)
                    .expect("pages of freshly adopted extents are free");
                self.picker.advance(taken);
                pages.extend((first..first + take).map(PageId));
            }
        }
        Some(pages)
    }

    /// Allocates `count` pages for a **maintenance relocation** (the
    /// engine's incremental compactor) under the unit's placement policy.
    ///
    /// * [`PlacementPolicy::Unrestricted`] delegates to
    ///   [`AllocationUnit::allocate_largest_runs`] unchanged — the
    ///   pre-placement behaviour, bit-identical (the oracle tests pin this).
    /// * [`PlacementPolicy::Banded`] runs the same largest-first greedy loop
    ///   but only over runs inside the maintenance band, at both
    ///   granularities (unit pages and unassigned GAM extents).  It never
    ///   spills into the foreground band: when the band cannot supply
    ///   `count` pages the allocation is refused.
    /// * [`PlacementPolicy::Reserve`] considers only runs no longer than
    ///   `foreground_watermark_pages` (for GAM runs, in page terms), leaving
    ///   every larger run reserved for foreground writes.
    ///
    /// Returns `None` — rolling back any partial progress — when the
    /// placement-eligible runs cannot supply `count` pages.
    pub fn allocate_maintenance_runs(
        &mut self,
        gam: &mut Gam,
        count: u64,
        foreground_watermark_pages: u64,
    ) -> Option<Vec<PageId>> {
        let placement = self.picker.placement();
        if placement.is_unrestricted() {
            return self.allocate_largest_runs(gam, count);
        }
        if count == 0 {
            return Some(Vec::new());
        }
        if count > self.available_pages(gam) {
            return None;
        }
        let mut pages: Vec<PageId> = Vec::with_capacity(count as usize);
        while (pages.len() as u64) < count {
            let remaining = count - pages.len() as u64;
            let unit_run = self.maintenance_unit_candidate(placement, foreground_watermark_pages);
            let gam_run =
                Self::maintenance_gam_candidate(gam, placement, foreground_watermark_pages);
            let unit_pages = unit_run.map_or(0, |run| run.len);
            let gam_pages = gam_run.map_or(0, |run| run.len * PAGES_PER_EXTENT);
            if unit_pages == 0 && gam_pages == 0 {
                // The placement-eligible runs are exhausted: refuse rather
                // than violate the placement, undoing any partial progress
                // (frees restore the GAM exactly — coalescing is
                // deterministic).
                self.free_pages(gam, pages);
                return None;
            }
            if unit_pages >= gam_pages {
                let run = unit_run.expect("unit run exists when unit_pages > 0");
                let take = run.len.min(remaining);
                let taken = Extent::new(run.start, take);
                self.map.reserve(taken).expect("candidate unit run is free");
                self.picker.advance(taken);
                pages.extend((run.start..run.start + take).map(PageId));
            } else {
                let run = gam_run.expect("gam run exists when gam_pages > 0");
                let extents = remaining.div_ceil(PAGES_PER_EXTENT).min(run.len);
                for index in 0..extents {
                    let extent = ExtentId(run.start + index);
                    let taken = gam.assign_specific(extent);
                    debug_assert!(taken, "extents of a free GAM run are assignable");
                    self.adopt_extent(extent);
                }
                let first = ExtentId(run.start).first_page().0;
                let take = (extents * PAGES_PER_EXTENT).min(remaining);
                let taken = Extent::new(first, take);
                self.map
                    .reserve(taken)
                    .expect("pages of freshly adopted extents are free");
                self.picker.advance(taken);
                pages.extend((first..first + take).map(PageId));
            }
        }
        Some(pages)
    }

    /// The largest placement-eligible free run inside the unit for a
    /// maintenance allocation, if any.  The band boundary is aligned to
    /// whole extents so the page and extent granularities agree on it.
    fn maintenance_unit_candidate(
        &self,
        placement: PlacementPolicy,
        foreground_watermark_pages: u64,
    ) -> Option<Extent> {
        let consumer = PlacementConsumer::Maintenance {
            foreground_watermark: foreground_watermark_pages,
        };
        placement.largest_eligible(&self.map, consumer, PAGES_PER_EXTENT)
    }

    /// The largest placement-eligible free run of unassigned GAM extents for
    /// a maintenance allocation, if any.  This is the one consumer that
    /// cannot use [`PlacementPolicy::largest_eligible`] verbatim: the
    /// watermark arrives in pages but GAM runs are measured in extents, so
    /// the `Reserve` cap must be converted — and a watermark below one
    /// extent admits no GAM run at all (rather than rounding up to one).
    fn maintenance_gam_candidate(
        gam: &Gam,
        placement: PlacementPolicy,
        foreground_watermark_pages: u64,
    ) -> Option<Extent> {
        let consumer = PlacementConsumer::Maintenance {
            foreground_watermark: foreground_watermark_pages,
        };
        if placement.run_cap(consumer).is_some() {
            // A GAM run of L extents is L × PAGES_PER_EXTENT contiguous
            // pages; it is eligible only if that stays within the watermark.
            let cap_extents = foreground_watermark_pages / PAGES_PER_EXTENT;
            if cap_extents == 0 {
                return None;
            }
            return gam.free_space().largest_run_at_most(cap_extents);
        }
        placement.largest_eligible(gam.free_space(), consumer, 1)
    }

    /// The policy-chosen free page at which to start a new run, if the unit
    /// has any free page.
    fn pick_page(&self) -> Option<PageId> {
        self.picker.pick(&self.map, 1).map(|run| PageId(run.start))
    }

    /// Registers a freshly assigned extent with the unit, marking its pages
    /// free for data.
    fn adopt_extent(&mut self, extent: ExtentId) {
        self.extents.insert(extent);
        self.map
            .release(Extent::new(extent.first_page().0, PAGES_PER_EXTENT))
            .expect("pages of a newly assigned extent were not free before");
    }

    /// Takes up to `max_len` contiguous free pages starting exactly at
    /// `page`, adopting the page's extent from the GAM first when it is
    /// still unassigned.  Returns how many pages were taken — 0 when the
    /// position is neither free nor adoptable.
    ///
    /// Taking `n` pages this way leaves the unit, GAM and picker in exactly
    /// the state `n` single-page takes of consecutive pages would, with one
    /// free-map update instead of `n`.
    fn take_run_at(&mut self, gam: &mut Gam, page: PageId, max_len: u64) -> u64 {
        if !self.map.is_free(Extent::new(page.0, 1)) {
            let extent = page.extent();
            if self.extents.contains(&extent) || !gam.assign_specific(extent) {
                return 0;
            }
            self.adopt_extent(extent);
        }
        let run = self
            .map
            .run_at(page.0)
            .expect("the position was just checked or adopted free");
        let take = (run.end() - page.0).min(max_len);
        let taken = Extent::new(page.0, take);
        self.map.reserve(taken).expect("the run's pages are free");
        self.picker.advance(taken);
        take
    }

    /// Frees one page, returning its extent to the GAM if the extent is now
    /// completely empty.
    pub fn free_page(&mut self, gam: &mut Gam, page: PageId) {
        self.free_run(gam, Extent::new(page.0, 1));
    }

    /// Frees a contiguous run of pages in one free-map release, returning
    /// each extent the run empties to the GAM.
    ///
    /// The end state is identical to freeing the run's pages one
    /// [`AllocationUnit::free_page`] at a time — release coalescing is
    /// deterministic and the extent-emptiness checks commute — but a run
    /// costs one release plus one check per touched extent instead of a
    /// release and a check per page.
    pub fn free_run(&mut self, gam: &mut Gam, run: Extent) {
        if run.len == 0 {
            return;
        }
        let first_extent = PageId(run.start).extent();
        let last_extent = PageId(run.end() - 1).extent();
        for index in first_extent.0..=last_extent.0 {
            assert!(
                self.extents.contains(&ExtentId(index)),
                "run {run:?} freed outside the unit's extents"
            );
        }
        self.map
            .release(run)
            .unwrap_or_else(|_| panic!("run {run:?} freed twice"));

        // If every page of a touched extent is free, hand the extent back.
        for index in first_extent.0..=last_extent.0 {
            let extent = ExtentId(index);
            let extent_pages = Extent::new(extent.first_page().0, PAGES_PER_EXTENT);
            if self.map.is_free(extent_pages) {
                self.map
                    .reserve(extent_pages)
                    .expect("a fully free extent's pages can be withdrawn");
                self.extents.remove(&extent);
                gam.release(extent);
            }
        }
    }

    /// Frees a sequence of pages, merging neighbouring pages that arrive
    /// consecutively (in either direction) into single [`free_run`] calls.
    ///
    /// Blob page lists and the ghost backlog's drain order are almost
    /// entirely made of such runs, so this turns their page-at-a-time frees
    /// into a handful of run releases.
    ///
    /// [`free_run`]: AllocationUnit::free_run
    pub fn free_pages(&mut self, gam: &mut Gam, pages: impl IntoIterator<Item = PageId>) {
        let mut run: Option<Extent> = None;
        for page in pages {
            run = Some(match run {
                None => Extent::new(page.0, 1),
                Some(open) if page.0 == open.end() => Extent::new(open.start, open.len + 1),
                Some(open) if page.0 + 1 == open.start => Extent::new(page.0, open.len + 1),
                Some(open) => {
                    self.free_run(gam, open);
                    Extent::new(page.0, 1)
                }
            });
        }
        if let Some(open) = run {
            self.free_run(gam, open);
        }
    }

    /// The extents currently assigned to this unit, ascending.
    pub fn extents(&self) -> impl Iterator<Item = ExtentId> + '_ {
        self.extents.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::fragment_count;

    const TEST_PAGES: u64 = 100 * PAGES_PER_EXTENT;

    #[test]
    fn gam_assigns_lowest_first() {
        let mut gam = Gam::new(10);
        assert_eq!(gam.free_extent_count(), 10);
        assert_eq!(gam.assign_next(), Some(ExtentId(0)));
        assert_eq!(gam.assign_next(), Some(ExtentId(1)));
        gam.release(ExtentId(0));
        assert_eq!(
            gam.assign_next(),
            Some(ExtentId(0)),
            "freed extents are reused before the file grows"
        );
        assert!(gam.is_free(ExtentId(5)));
        assert!(!gam.is_free(ExtentId(1)));
        assert_eq!(gam.peek_next(), Some(ExtentId(2)));
        assert_eq!(gam.policy(), AllocationPolicy::Native);
    }

    #[test]
    fn gam_policies_choose_different_extents() {
        // Free runs of different lengths: assign everything then free
        // [2, 3) (length 1) and [5, 8) (length 3).
        let fragmented_gam = |policy| {
            let mut gam = Gam::with_policy(10, policy);
            for extent in 0..10 {
                assert!(gam.assign_specific(ExtentId(extent)));
            }
            gam.release(ExtentId(2));
            for extent in 5..8 {
                gam.release(ExtentId(extent));
            }
            gam
        };
        assert_eq!(
            fragmented_gam(AllocationPolicy::Fit(FitPolicy::FirstFit)).peek_next(),
            Some(ExtentId(2))
        );
        assert_eq!(
            fragmented_gam(AllocationPolicy::Fit(FitPolicy::BestFit)).peek_next(),
            Some(ExtentId(2)),
            "the snuggest hole is the single extent"
        );
        assert_eq!(
            fragmented_gam(AllocationPolicy::Fit(FitPolicy::WorstFit)).peek_next(),
            Some(ExtentId(5)),
            "the largest hole starts at extent 5"
        );
        let mut next_fit = fragmented_gam(AllocationPolicy::Fit(FitPolicy::NextFit));
        assert_eq!(next_fit.assign_next(), Some(ExtentId(2)));
        assert_eq!(
            next_fit.assign_next(),
            Some(ExtentId(5)),
            "the cursor moved past extent 2"
        );
    }

    #[test]
    fn gam_assign_specific() {
        let mut gam = Gam::new(10);
        assert!(gam.assign_specific(ExtentId(4)));
        assert!(!gam.assign_specific(ExtentId(4)), "already assigned");
        assert!(!gam.is_free(ExtentId(4)));
    }

    #[test]
    #[should_panic(expected = "released twice")]
    fn gam_double_release_panics() {
        let mut gam = Gam::new(4);
        gam.release(ExtentId(0));
    }

    #[test]
    fn clean_file_allocations_are_contiguous() {
        let mut gam = Gam::new(100);
        let mut unit = AllocationUnit::new(PageKind::LobData, TEST_PAGES);
        let a = unit.allocate_pages(&mut gam, 20).unwrap();
        assert_eq!(a.len(), 20);
        assert_eq!(fragment_count(&a), 1);
        // The next object continues right after the previous one, sharing its
        // partially used extent.
        let b = unit.allocate_pages(&mut gam, 20).unwrap();
        assert_eq!(fragment_count(&b), 1);
        assert!(a.last().unwrap().is_followed_by(b[0]));
        assert_eq!(unit.used_pages(), 40);
        // 40 pages span extents 0..=4.
        assert_eq!(unit.extent_count(), 5);
    }

    #[test]
    fn freed_low_pages_are_reused_before_the_tail() {
        let mut gam = Gam::new(100);
        let mut unit = AllocationUnit::new(PageKind::LobData, TEST_PAGES);
        let a = unit.allocate_pages(&mut gam, 16).unwrap();
        let _b = unit.allocate_pages(&mut gam, 16).unwrap();
        // Delete `a`: its two extents return to the GAM.
        for page in &a {
            unit.free_page(&mut gam, *page);
        }
        // A new 8-page object lands in the freed low extent, not at the tail.
        let c = unit.allocate_pages(&mut gam, 8).unwrap();
        assert_eq!(c[0], PageId(0));
        assert_eq!(fragment_count(&c), 1);
    }

    #[test]
    fn scattered_free_pages_fragment_new_objects() {
        let mut gam = Gam::new(100);
        let mut unit = AllocationUnit::new(PageKind::LobData, TEST_PAGES);
        let a = unit.allocate_pages(&mut gam, 64).unwrap();
        // Free every other 4-page group of `a`, leaving 4-page holes.
        for chunk in a.chunks(8).map(|c| &c[..4]) {
            for page in chunk {
                unit.free_page(&mut gam, *page);
            }
        }
        // A 16-page object must span at least four of those holes.
        let b = unit.allocate_pages(&mut gam, 16).unwrap();
        assert!(
            fragment_count(&b) >= 4,
            "got {} fragments",
            fragment_count(&b)
        );
        // And it fills the lowest holes first.
        assert_eq!(b[0], PageId(0));
    }

    #[test]
    fn freeing_a_whole_extent_returns_it_to_the_gam() {
        let mut gam = Gam::new(10);
        let mut unit = AllocationUnit::new(PageKind::LobData, 10 * PAGES_PER_EXTENT);
        let pages = unit.allocate_pages(&mut gam, 8).unwrap();
        assert_eq!(unit.extent_count(), 1);
        let before = gam.free_extent_count();
        for page in &pages {
            unit.free_page(&mut gam, *page);
        }
        assert_eq!(unit.extent_count(), 0);
        assert_eq!(unit.used_pages(), 0);
        assert_eq!(gam.free_extent_count(), before + 1);
    }

    #[test]
    fn partially_freed_extents_stay_with_the_unit() {
        let mut gam = Gam::new(10);
        let mut unit = AllocationUnit::new(PageKind::LobData, 10 * PAGES_PER_EXTENT);
        let pages = unit.allocate_pages(&mut gam, 8).unwrap();
        unit.free_page(&mut gam, pages[0]);
        assert_eq!(unit.extent_count(), 1);
        assert_eq!(unit.free_page_count(), 1);
        // The freed page is reused before any new extent is assigned.
        let next = unit.allocate_pages(&mut gam, 1).unwrap();
        assert_eq!(next[0], pages[0]);
    }

    #[test]
    fn out_of_space_is_detected() {
        let mut gam = Gam::new(2); // 16 pages total
        let mut unit = AllocationUnit::new(PageKind::LobData, 2 * PAGES_PER_EXTENT);
        assert!(unit.allocate_pages(&mut gam, 17).is_err());
        let pages = unit.allocate_pages(&mut gam, 10).unwrap();
        assert_eq!(pages.len(), 10);
        let err = unit.allocate_pages(&mut gam, 7).unwrap_err();
        assert!(matches!(
            err,
            DbError::OutOfSpace {
                requested_pages: 7,
                free_pages: 6
            }
        ));
        // The failed allocation must not have leaked anything.
        assert_eq!(unit.used_pages(), 10);
        assert_eq!(unit.available_pages(&gam), 6);
    }

    #[test]
    #[should_panic(expected = "freed twice")]
    fn double_free_panics() {
        let mut gam = Gam::new(2);
        let mut unit = AllocationUnit::new(PageKind::LobData, 2 * PAGES_PER_EXTENT);
        let pages = unit.allocate_pages(&mut gam, 4).unwrap();
        unit.free_page(&mut gam, pages[0]);
        unit.free_page(&mut gam, pages[0]);
    }

    #[test]
    fn zero_page_allocations_are_empty() {
        let mut gam = Gam::new(2);
        let mut unit = AllocationUnit::new(PageKind::RowData, 2 * PAGES_PER_EXTENT);
        assert!(unit.allocate_pages(&mut gam, 0).unwrap().is_empty());
        assert_eq!(unit.kind(), PageKind::RowData);
        assert_eq!(unit.extents().count(), 0);
    }

    #[test]
    fn best_fit_starts_new_runs_in_the_snuggest_hole() {
        let mut gam = Gam::with_policy(100, AllocationPolicy::Fit(FitPolicy::BestFit));
        let mut unit = AllocationUnit::with_policy(
            PageKind::LobData,
            TEST_PAGES,
            AllocationPolicy::Fit(FitPolicy::BestFit),
        );
        let a = unit.allocate_pages(&mut gam, 32).unwrap();
        // Carve two holes: a 1-page hole at page 5 and a 3-page hole at 16..19.
        unit.free_page(&mut gam, a[5]);
        for page in &a[16..19] {
            unit.free_page(&mut gam, *page);
        }
        // A 1-page object goes to the snuggest hole (page 5), not the lowest
        // eligible position of first fit.
        let b = unit.allocate_pages(&mut gam, 1).unwrap();
        assert_eq!(b, vec![PageId(5)]);
    }

    #[test]
    fn allocate_largest_runs_is_contiguous_when_a_run_fits() {
        let mut gam = Gam::new(100);
        let mut unit = AllocationUnit::new(PageKind::LobData, TEST_PAGES);
        let a = unit.allocate_pages(&mut gam, 16).unwrap();
        // Free a 6-page hole inside the unit's extents.
        for page in &a[4..10] {
            unit.free_page(&mut gam, *page);
        }
        // The GAM's unassigned tail (98 extents) dwarfs the 6-page hole, so a
        // 4-page request lands contiguously in fresh extents...
        let from_gam = unit.allocate_largest_runs(&mut gam, 4).unwrap();
        assert_eq!(fragment_count(&from_gam), 1);
        assert_eq!(from_gam[0], ExtentId(2).first_page());
        // ...and a 20-page one is a single run of consecutive fresh extents.
        let bigger = unit.allocate_largest_runs(&mut gam, 20).unwrap();
        assert_eq!(fragment_count(&bigger), 1);
        assert!(unit.allocate_largest_runs(&mut gam, 0).unwrap().is_empty());
    }

    #[test]
    fn allocate_largest_runs_falls_back_to_several_runs() {
        let mut gam = Gam::new(2); // 16 pages
        let mut unit = AllocationUnit::new(PageKind::LobData, 2 * PAGES_PER_EXTENT);
        let pages = unit.allocate_pages(&mut gam, 16).unwrap();
        // Free pages in two separated runs of 3 and 2.
        for page in [&pages[2..5], &pages[8..10]].concat() {
            unit.free_page(&mut gam, page);
        }
        // No single 5-page run exists anywhere; the largest-first fallback
        // uses exactly the two runs, biggest first.
        let scattered = unit.allocate_largest_runs(&mut gam, 5).unwrap();
        assert_eq!(fragment_count(&scattered), 2);
        assert_eq!(scattered[0], pages[2], "the 3-page run is taken first");
        // More than the free pool refuses cleanly.
        assert!(unit.allocate_largest_runs(&mut gam, 1).is_none());
    }

    fn banded_pair(total_extents: u64, boundary: f64) -> (Gam, AllocationUnit) {
        let placement = PlacementPolicy::banded(boundary);
        (
            Gam::with_placement(total_extents, AllocationPolicy::Native, placement),
            AllocationUnit::with_placement(
                PageKind::LobData,
                total_extents * PAGES_PER_EXTENT,
                AllocationPolicy::Native,
                placement,
            ),
        )
    }

    #[test]
    fn maintenance_runs_come_from_the_maintenance_band() {
        let (mut gam, mut unit) = banded_pair(100, 0.6);
        let boundary_page = 60 * PAGES_PER_EXTENT;
        // Foreground allocations fill from the front as before...
        let foreground = unit.allocate_pages(&mut gam, 16).unwrap();
        assert_eq!(foreground[0], PageId(0));
        // ...while maintenance relocations land beyond the boundary.
        let moved = unit.allocate_maintenance_runs(&mut gam, 16, 0).unwrap();
        assert!(
            moved.iter().all(|page| page.0 >= boundary_page),
            "maintenance pages {moved:?} must sit at or above page {boundary_page}"
        );
        assert_eq!(fragment_count(&moved), 1);
    }

    #[test]
    fn banded_maintenance_refuses_at_full_band_occupancy_and_rolls_back() {
        let (mut gam, mut unit) = banded_pair(100, 0.6);
        // Occupy the entire maintenance band (100% band occupancy): every
        // high extent is assigned away.
        for extent in 60..100 {
            assert!(gam.assign_specific(ExtentId(extent)));
        }
        let free_before = gam.free_extent_count();
        let used_before = unit.used_pages();
        // Plenty of low-band space exists, but maintenance may not touch it.
        assert_eq!(unit.allocate_maintenance_runs(&mut gam, 8, 0), None);
        assert_eq!(gam.free_extent_count(), free_before, "no partial progress");
        assert_eq!(unit.used_pages(), used_before);
        // A band with *some* space still refuses (and rolls back) when the
        // request exceeds it.
        gam.release(ExtentId(60));
        assert_eq!(
            unit.allocate_maintenance_runs(&mut gam, 2 * PAGES_PER_EXTENT, 0),
            None,
            "one free high extent cannot hold two extents' worth"
        );
        assert_eq!(gam.free_extent_count(), free_before + 1);
        assert_eq!(unit.used_pages(), used_before);
        assert_eq!(unit.extent_count(), 0, "adopted extents were returned");
        // The partial band still serves requests it can hold.
        let fits = unit
            .allocate_maintenance_runs(&mut gam, PAGES_PER_EXTENT, 0)
            .unwrap();
        assert_eq!(fits[0], ExtentId(60).first_page());
    }

    #[test]
    fn foreground_band_boundary_is_extent_aligned() {
        // 100 extents / 800 pages at boundary 0.603: raw page-granular
        // rounding would end the foreground band at page 482, but the
        // extent-granular boundary is extent 60 = page 480.  The page space
        // must use the extent-aligned boundary, or the two consumers' bands
        // would overlap on pages [480, 482): here a best-fit *foreground*
        // pick must treat the snug 1-page hole at 480 as maintenance
        // territory and place in its own band instead.
        let placement = PlacementPolicy::banded(0.603);
        let policy = AllocationPolicy::Fit(FitPolicy::BestFit);
        let mut gam = Gam::with_placement(100, policy, placement);
        let mut unit =
            AllocationUnit::with_placement(PageKind::LobData, TEST_PAGES, policy, placement);
        let all = unit.allocate_pages(&mut gam, 800).unwrap();
        assert_eq!(all.len(), 800);
        unit.free_page(&mut gam, PageId(480));
        unit.free_page(&mut gam, PageId(100));
        unit.free_page(&mut gam, PageId(101));
        let pick = unit.allocate_pages(&mut gam, 1).unwrap();
        assert_eq!(
            pick,
            vec![PageId(100)],
            "page 480 sits in the maintenance band under the aligned boundary"
        );
        // The maintenance side agrees: its candidate is exactly the hole at
        // the aligned boundary.
        let moved = unit.allocate_maintenance_runs(&mut gam, 1, 0).unwrap();
        assert_eq!(moved, vec![PageId(480)]);
    }

    #[test]
    fn reserve_maintenance_refuses_runs_above_the_watermark() {
        let placement = PlacementPolicy::Reserve;
        let mut gam = Gam::with_placement(100, AllocationPolicy::Native, placement);
        let mut unit = AllocationUnit::with_placement(
            PageKind::LobData,
            TEST_PAGES,
            AllocationPolicy::Native,
            placement,
        );
        // The whole file is one 100-extent run; watermark 4 extents' worth
        // of pages means no GAM run is eligible at all.
        assert_eq!(
            unit.allocate_maintenance_runs(&mut gam, 8, 4 * PAGES_PER_EXTENT),
            None,
            "a 100-extent run exceeds the watermark and must be refused"
        );
        assert_eq!(gam.free_extent_count(), 100);
        // Carve an eligible 3-extent run: [10, 13) free between assignments.
        for extent in (0..10).chain(13..100) {
            assert!(gam.assign_specific(ExtentId(extent)));
        }
        let pages = unit
            .allocate_maintenance_runs(&mut gam, 8, 4 * PAGES_PER_EXTENT)
            .unwrap();
        assert_eq!(pages[0], ExtentId(10).first_page());
        // A watermark below one extent admits no GAM run.
        assert_eq!(
            unit.allocate_maintenance_runs(&mut gam, 8, PAGES_PER_EXTENT - 1),
            None
        );
    }

    #[test]
    fn unrestricted_maintenance_is_exactly_allocate_largest_runs() {
        let mut gam_a = Gam::new(20);
        let mut unit_a = AllocationUnit::new(PageKind::LobData, 20 * PAGES_PER_EXTENT);
        let mut gam_b = gam_a.clone();
        let mut unit_b = unit_a.clone();
        let seed_a = unit_a.allocate_pages(&mut gam_a, 30).unwrap();
        let seed_b = unit_b.allocate_pages(&mut gam_b, 30).unwrap();
        assert_eq!(seed_a, seed_b);
        for page in seed_a.iter().skip(4).step_by(3) {
            unit_a.free_page(&mut gam_a, *page);
            unit_b.free_page(&mut gam_b, *page);
        }
        let via_maintenance = unit_a.allocate_maintenance_runs(&mut gam_a, 12, 7);
        let via_largest = unit_b.allocate_largest_runs(&mut gam_b, 12);
        assert_eq!(via_maintenance, via_largest);
        assert_eq!(gam_a.free_extent_count(), gam_b.free_extent_count());
    }

    #[test]
    fn allocate_pages_high_takes_the_tail_of_the_file() {
        let mut gam = Gam::new(10);
        let mut unit = AllocationUnit::new(PageKind::RowData, 10 * PAGES_PER_EXTENT);
        let pages = unit.allocate_pages_high(&mut gam, 3).unwrap();
        let last = 10 * PAGES_PER_EXTENT - 1;
        assert_eq!(
            pages,
            vec![PageId(last), PageId(last - 1), PageId(last - 2)]
        );
        assert_eq!(unit.extent_count(), 1);
        assert!(!gam.is_free(ExtentId(9)));
    }
}
