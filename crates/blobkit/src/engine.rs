//! The storage engine: a pre-sized data file, a metadata table with a
//! clustered index, and out-of-row BLOB storage.
//!
//! The engine reproduces the aspects of SQL Server's behaviour the paper
//! holds responsible for its fragmentation curve:
//!
//! * BLOBs are stored **out of row** on dedicated LOB pages so the metadata
//!   table stays small and cached (Section 4.2);
//! * inserts run in **bulk-logged mode**: new pages are written to the data
//!   file and forced at commit — there is no second (log) copy of the BLOB;
//! * updates are **wholesale replacements** (the workload's safe-write
//!   equivalent): the new version is written to freshly allocated pages and
//!   the old version's pages become ghosts;
//! * **ghost cleanup** runs asynchronously (here: every few operations or
//!   under allocation pressure) and returns pages — and, once empty, whole
//!   extents — to the free pool, where the GAM's lowest-extent-first reuse
//!   gradually interleaves objects and drives the near-linear growth of
//!   fragments per object;
//! * the only supported "defragmentation" is copying the table into a new
//!   filegroup ([`Database::rebuild_into_new_filegroup`]), exactly what the
//!   paper reports Microsoft recommends.

use std::collections::{BTreeMap, BTreeSet};

use lor_alloc::{
    AllocationPolicy, BandOccupancy, CountMultiset, Extent, FragmentationTracker, FreeSpace,
    FreeSpaceReport, PlacementPolicy,
};
use lor_disksim::ByteRun;
use serde::{Deserialize, Serialize};

use crate::allocation::{AllocationUnit, Gam};
use crate::blob::{BlobId, BlobRecord};
use crate::error::DbError;
use crate::page::{ExtentId, PageId, PageKind, PAGES_PER_EXTENT};

/// Engine configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Size of the (pre-created, physically contiguous) data file in bytes.
    pub data_file_bytes: u64,
    /// Page size in bytes (SQL Server: 8192).
    pub page_size: u64,
    /// BLOB payload bytes stored per LOB page (page size minus headers and
    /// record overhead).
    pub lob_payload_per_page: u64,
    /// Metadata rows per clustered-index page.
    pub rows_per_page: u64,
    /// Mutating operations between automatic ghost-cleanup passes.
    ///
    /// `0` disables the interval-driven cleanup entirely: ghosts then
    /// accumulate until either allocation pressure forces a pass or an
    /// external scheduler (the `lor-maint` background maintenance subsystem)
    /// calls [`Database::ghost_cleanup`] explicitly.
    pub ghost_cleanup_interval_ops: u64,
    /// Byte offset of the data file on the underlying disk (the file is
    /// modelled as one contiguous preallocation).
    pub base_offset: u64,
    /// How the engine places pages and extents.  [`AllocationPolicy::Native`]
    /// is SQL Server's lowest-first reuse; the fit policies exist for the
    /// cross-substrate ablation benches.
    pub allocation_policy: AllocationPolicy,
    /// Which region of free space each consumer may draw from.
    /// [`PlacementPolicy::Unrestricted`] reproduces the pre-placement
    /// behaviour bit-identically; the banded and reserve variants confine
    /// [`Database::compact_step`] so background compaction stops consuming
    /// the contiguous runs the engine's allocator needs.
    pub placement: PlacementPolicy,
}

impl EngineConfig {
    /// A configuration resembling the paper's SQL Server setup for a data
    /// file of the given size.
    pub fn new(data_file_bytes: u64) -> Self {
        EngineConfig {
            data_file_bytes,
            page_size: 8192,
            lob_payload_per_page: 8064,
            rows_per_page: 128,
            ghost_cleanup_interval_ops: 16,
            base_offset: 0,
            allocation_policy: AllocationPolicy::Native,
            placement: PlacementPolicy::Unrestricted,
        }
    }

    /// Total pages in the data file.
    pub fn total_pages(&self) -> u64 {
        self.data_file_bytes / self.page_size
    }

    /// Total extents in the data file.
    pub fn total_extents(&self) -> u64 {
        self.total_pages() / PAGES_PER_EXTENT
    }

    /// LOB pages needed to store an object of `size_bytes`.
    pub fn pages_for(&self, size_bytes: u64) -> u64 {
        size_bytes.div_ceil(self.lob_payload_per_page)
    }

    fn validate(&self) -> Result<(), DbError> {
        if self.page_size == 0 {
            return Err(DbError::BadConfig("page size must be non-zero"));
        }
        if self.lob_payload_per_page == 0 || self.lob_payload_per_page > self.page_size {
            return Err(DbError::BadConfig("LOB payload must be in (0, page size]"));
        }
        if self.rows_per_page == 0 {
            return Err(DbError::BadConfig("rows per page must be non-zero"));
        }
        if self.total_extents() == 0 {
            return Err(DbError::BadConfig(
                "data file must hold at least one extent",
            ));
        }
        self.placement.validate().map_err(DbError::BadConfig)?;
        Ok(())
    }
}

/// Counters describing everything the engine has been asked to do.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Objects inserted.
    pub inserts: u64,
    /// Objects replaced (wholesale update).
    pub updates: u64,
    /// Objects deleted.
    pub deletes: u64,
    /// Payload bytes written (includes rewrites).
    pub bytes_written: u64,
    /// Payload bytes of deleted or replaced versions.
    pub bytes_deleted: u64,
    /// LOB pages allocated over the engine's lifetime.
    pub pages_allocated: u64,
    /// Ghost-cleanup passes.
    pub ghost_cleanups: u64,
    /// Cleanups forced by allocation pressure.
    pub forced_cleanups: u64,
    /// Clustered-index pages currently allocated for metadata rows.
    pub row_pages: u64,
}

/// What a write-path operation did, so callers can charge the disk model.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DbWriteReceipt {
    /// The stored object's identifier.
    pub blob_id: BlobId,
    /// Physical byte runs written (whole pages), in write order.
    pub runs: Vec<ByteRun>,
    /// Payload bytes written.
    pub bytes_written: u64,
    /// LOB pages written.
    pub pages_written: u64,
}

/// Outcome of one incremental compaction step ([`Database::compact_step`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompactReport {
    /// Blobs whose layout was examined.
    pub blobs_examined: u64,
    /// Blobs rewritten into a single contiguous run.
    pub blobs_moved: u64,
    /// Blobs skipped because no contiguous run large enough existed.
    pub blobs_skipped: u64,
    /// LOB pages written while moving blobs.
    pub pages_moved: u64,
    /// Payload bytes of the moved blobs.
    pub bytes_copied: u64,
    /// Fragments before the step, summed over examined blobs.
    pub fragments_before: u64,
    /// Fragments after the step, summed over examined blobs.
    pub fragments_after: u64,
}

/// The BLOB storage engine.
#[derive(Debug, Clone)]
pub struct Database {
    config: EngineConfig,
    gam: Gam,
    lob_unit: AllocationUnit,
    row_unit: AllocationUnit,
    blobs: BTreeMap<BlobId, BlobRecord>,
    keys: BTreeMap<String, BlobId>,
    next_id: u64,
    /// Pages of deleted/replaced BLOB versions awaiting ghost cleanup.
    /// Kept sorted (a page can never be ghosted twice before cleanup frees
    /// it), so a budgeted tail-first pass pops the highest offsets in
    /// O(take · log G) instead of re-sorting the whole backlog.
    ghost_pages: BTreeSet<PageId>,
    ops_since_cleanup: u64,
    /// Metadata rows currently live (one per object).
    row_count: u64,
    stats: EngineStats,
    /// Incremental per-blob fragment-count accounting: updated at every
    /// layout mutation so [`Database::fragmentation`] is O(1) in the object
    /// count (the maintenance scheduler observes it every tick).
    frag_tracker: FragmentationTracker,
    /// Page counts of every live blob, so the foreground watermark (largest
    /// live allocation) is an O(1) max query instead of a full scan per
    /// compaction step.
    page_tracker: CountMultiset,
    /// Every blob with more than one fragment, ordered so that iterating in
    /// reverse yields fragment count descending, id ascending — the exact
    /// order the compactor's old sort-the-world scan produced.  Maintained at
    /// the same sites as `frag_tracker`, so [`Database::compact_step`] pays
    /// O(candidates) instead of re-walking every page of every blob per tick.
    compact_candidates: BTreeSet<(u64, std::cmp::Reverse<BlobId>)>,
}

impl Database {
    /// Creates an engine over a fresh data file.
    pub fn create(config: EngineConfig) -> Result<Self, DbError> {
        config.validate()?;
        let gam = Gam::with_placement(
            config.total_extents(),
            config.allocation_policy,
            config.placement,
        );
        Ok(Database {
            gam,
            lob_unit: AllocationUnit::with_placement(
                PageKind::LobData,
                config.total_pages(),
                config.allocation_policy,
                config.placement,
            ),
            row_unit: AllocationUnit::with_placement(
                PageKind::RowData,
                config.total_pages(),
                config.allocation_policy,
                config.placement,
            ),
            blobs: BTreeMap::new(),
            keys: BTreeMap::new(),
            next_id: 1,
            ghost_pages: BTreeSet::new(),
            ops_since_cleanup: 0,
            row_count: 0,
            stats: EngineStats::default(),
            frag_tracker: FragmentationTracker::new(),
            page_tracker: CountMultiset::new(),
            compact_candidates: BTreeSet::new(),
            config,
        })
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Number of live objects.
    pub fn object_count(&self) -> usize {
        self.blobs.len()
    }

    /// Payload capacity of the data file available to BLOBs, in bytes.
    ///
    /// This is approximate (metadata pages also consume extents) but adequate
    /// for sizing workloads.
    pub fn data_capacity_bytes(&self) -> u64 {
        self.config.total_pages() * self.config.lob_payload_per_page
    }

    /// Payload bytes currently free for BLOBs, counting ghost pages as free
    /// capacity (they exist, they are just not reusable yet).
    pub fn free_bytes(&self) -> u64 {
        (self.lob_unit.available_pages(&self.gam) + self.ghost_pages.len() as u64)
            * self.config.lob_payload_per_page
    }

    /// Looks up a record by key.
    pub fn get(&self, key: &str) -> Result<&BlobRecord, DbError> {
        let id = self
            .keys
            .get(key)
            .ok_or_else(|| DbError::NoSuchKey(key.to_string()))?;
        Ok(&self.blobs[id])
    }

    /// Looks up a record by id.
    pub fn get_by_id(&self, id: BlobId) -> Option<&BlobRecord> {
        self.blobs.get(&id)
    }

    /// Iterates over live records in id order.
    pub fn iter_blobs(&self) -> impl Iterator<Item = &BlobRecord> {
        self.blobs.values()
    }

    /// Inserts a new object of `size_bytes` under `key`.
    pub fn insert(&mut self, key: &str, size_bytes: u64) -> Result<DbWriteReceipt, DbError> {
        if self.keys.contains_key(key) {
            return Err(DbError::KeyExists(key.to_string()));
        }
        let pages = self.allocate_lob_pages(self.config.pages_for(size_bytes))?;
        let id = BlobId(self.next_id);
        self.next_id += 1;
        let record = BlobRecord::new(id, key, size_bytes, pages);
        let receipt = self.receipt_for(&record);
        let fragments = record.fragment_count() as u64;
        self.frag_tracker.record_insert(fragments);
        self.page_tracker.insert(record.page_count());
        self.reindex_candidate(id, 0, fragments);
        self.keys.insert(key.to_string(), id);
        self.blobs.insert(id, record);
        self.insert_metadata_row()?;
        self.stats.inserts += 1;
        self.stats.bytes_written += size_bytes;
        self.bump_op();
        Ok(receipt)
    }

    /// Inserts an object migrating in from another shard, allocating its
    /// pages as the **maintenance** consumer
    /// ([`AllocationUnit::allocate_maintenance_runs`]): under a banded or
    /// reserve [`PlacementPolicy`] the allocation is confined to the runs
    /// maintenance may touch and *fails* rather than spilling into the space
    /// foreground updates need — that refusal is the placement guarantee
    /// cross-shard rebalancing relies on.
    pub fn insert_as_maintenance(
        &mut self,
        key: &str,
        size_bytes: u64,
    ) -> Result<DbWriteReceipt, DbError> {
        if self.keys.contains_key(key) {
            return Err(DbError::KeyExists(key.to_string()));
        }
        let need = self.config.pages_for(size_bytes);
        let watermark_pages = self.foreground_watermark_pages();
        let pages =
            match self
                .lob_unit
                .allocate_maintenance_runs(&mut self.gam, need, watermark_pages)
            {
                Some(pages) => pages,
                None => {
                    return Err(DbError::OutOfSpace {
                        requested_pages: need,
                        free_pages: self.lob_unit.available_pages(&self.gam),
                    })
                }
            };
        self.stats.pages_allocated += pages.len() as u64;
        let id = BlobId(self.next_id);
        self.next_id += 1;
        let record = BlobRecord::new(id, key, size_bytes, pages);
        let receipt = self.receipt_for(&record);
        let fragments = record.fragment_count() as u64;
        self.frag_tracker.record_insert(fragments);
        self.page_tracker.insert(record.page_count());
        self.reindex_candidate(id, 0, fragments);
        self.keys.insert(key.to_string(), id);
        self.blobs.insert(id, record);
        self.insert_metadata_row()?;
        self.stats.inserts += 1;
        self.stats.bytes_written += size_bytes;
        self.bump_op();
        Ok(receipt)
    }

    /// Replaces the object stored under `key` with a new version of
    /// `size_bytes` (wholesale replacement, the BLOB analogue of a safe
    /// write).  The new version is written before the old version's pages are
    /// ghosted, exactly as a transactional update must.
    pub fn update(&mut self, key: &str, size_bytes: u64) -> Result<DbWriteReceipt, DbError> {
        let id = *self
            .keys
            .get(key)
            .ok_or_else(|| DbError::NoSuchKey(key.to_string()))?;
        let new_pages = self.allocate_lob_pages(self.config.pages_for(size_bytes))?;

        let record = self
            .blobs
            .get_mut(&id)
            .expect("key map and blob map are consistent");
        let old_pages = std::mem::replace(&mut record.pages, new_pages);
        let old_size = std::mem::replace(&mut record.size_bytes, size_bytes);
        let receipt = Self::receipt_for_parts(&self.config, id, &record.pages, size_bytes);
        let old_fragments = crate::page::fragment_count(&old_pages) as u64;
        let new_fragments = crate::page::fragment_count(&self.blobs[&id].pages) as u64;
        self.frag_tracker
            .record_replace(old_fragments, new_fragments);
        self.page_tracker
            .replace(old_pages.len() as u64, self.blobs[&id].pages.len() as u64);
        self.reindex_candidate(id, old_fragments, new_fragments);
        self.ghost_pages.extend(old_pages);
        self.stats.updates += 1;
        self.stats.bytes_written += size_bytes;
        self.stats.bytes_deleted += old_size;
        self.bump_op();
        Ok(receipt)
    }

    /// Replaces several objects whose writes are in flight at the same time,
    /// as a concurrent web application does.
    ///
    /// Page allocation for the new versions proceeds **round-robin in
    /// write-request-sized chunks**, so concurrent uploads interleave on disk
    /// just as they do under a real server.  Each object's old version is
    /// ghosted when its replacement commits.
    pub fn update_batch(
        &mut self,
        items: &[(&str, u64)],
        write_request_size: u64,
    ) -> Result<Vec<DbWriteReceipt>, DbError> {
        let chunk_payload = write_request_size.max(1);
        // Validate all keys first.
        let mut ids = Vec::with_capacity(items.len());
        for (key, _) in items {
            ids.push(
                *self
                    .keys
                    .get(*key)
                    .ok_or_else(|| DbError::NoSuchKey(key.to_string()))?,
            );
        }

        // Interleave page allocation across the batch.
        let mut new_pages: Vec<Vec<PageId>> = vec![Vec::new(); items.len()];
        let targets: Vec<u64> = items
            .iter()
            .map(|(_, size)| self.config.pages_for(*size))
            .collect();
        let mut pending = true;
        while pending {
            pending = false;
            for (index, target) in targets.iter().enumerate() {
                let have = new_pages[index].len() as u64;
                if have < *target {
                    let want = self.config.pages_for(chunk_payload).min(target - have);
                    let pages = match self.allocate_lob_pages(want) {
                        Ok(pages) => pages,
                        Err(err) => {
                            // Abort the whole batch: pages already allocated
                            // for earlier items belong to no record yet, so
                            // they must go straight back to the free pool or
                            // the data file would leak them permanently.
                            for page in new_pages.iter().flatten() {
                                self.lob_unit.free_page(&mut self.gam, *page);
                            }
                            self.stats.pages_allocated -= new_pages
                                .iter()
                                .map(|pages| pages.len() as u64)
                                .sum::<u64>();
                            return Err(err);
                        }
                    };
                    new_pages[index].extend(pages);
                    if (new_pages[index].len() as u64) < *target {
                        pending = true;
                    }
                }
            }
        }

        // Commit: swap page maps, ghost old versions.
        let mut receipts = Vec::with_capacity(items.len());
        for (((_, size), id), pages) in items.iter().zip(ids).zip(new_pages) {
            let record = self
                .blobs
                .get_mut(&id)
                .expect("key map and blob map are consistent");
            let old_pages = std::mem::replace(&mut record.pages, pages);
            let old_size = std::mem::replace(&mut record.size_bytes, *size);
            let new_fragments = record.fragment_count() as u64;
            let new_page_count = record.page_count();
            receipts.push(Self::receipt_for_parts(
                &self.config,
                id,
                &record.pages,
                *size,
            ));
            let old_fragments = crate::page::fragment_count(&old_pages) as u64;
            self.frag_tracker
                .record_replace(old_fragments, new_fragments);
            self.page_tracker
                .replace(old_pages.len() as u64, new_page_count);
            self.reindex_candidate(id, old_fragments, new_fragments);
            self.ghost_pages.extend(old_pages);
            self.stats.updates += 1;
            self.stats.bytes_written += *size;
            self.stats.bytes_deleted += old_size;
            self.bump_op();
        }
        Ok(receipts)
    }

    /// Deletes the object stored under `key`.  Its pages become ghosts until
    /// the next cleanup pass.
    pub fn delete(&mut self, key: &str) -> Result<(), DbError> {
        let id = self
            .keys
            .remove(key)
            .ok_or_else(|| DbError::NoSuchKey(key.to_string()))?;
        let record = self
            .blobs
            .remove(&id)
            .expect("key map and blob map are consistent");
        let fragments = record.fragment_count() as u64;
        self.frag_tracker.record_remove(fragments);
        self.page_tracker.remove(record.page_count());
        self.reindex_candidate(id, fragments, 0);
        self.ghost_pages.extend(record.pages);
        self.row_count -= 1;
        self.stats.deletes += 1;
        self.stats.bytes_deleted += record.size_bytes;
        self.bump_op();
        Ok(())
    }

    /// The byte runs a full read of the object touches (whole LOB pages, in
    /// logical order).
    pub fn read_plan(&self, key: &str) -> Result<Vec<ByteRun>, DbError> {
        Ok(self
            .get(key)?
            .byte_runs(self.config.page_size, self.config.base_offset))
    }

    /// Reclaims all ghost pages, returning fully empty extents to the GAM.
    pub fn ghost_cleanup(&mut self) {
        self.ghost_cleanup_limited(0);
    }

    /// Reclaims up to `max_pages` ghost pages (0 means all), returning fully
    /// empty extents to the GAM.  Returns the pages reclaimed.
    ///
    /// The bounded form is what a budgeted background scheduler uses: a huge
    /// ghost backlog is then drained over several passes instead of charging
    /// one unbounded sweep to a single tick.  A bounded pass releases ghosts
    /// **tail-first** (highest page offsets first): releasing *low* pages
    /// feeds the engine's lowest-first reuse with scattered mid-file holes
    /// and accelerates interleaving, which is exactly the
    /// small-budget-worse-than-idle pathology EXPERIMENTS.md records.  High
    /// pages sit near the allocation frontier, so returning them keeps the
    /// free space the allocator sees as contiguous as possible while the
    /// low-offset backlog keeps aging towards a rare bulk drop.
    pub fn ghost_cleanup_limited(&mut self, max_pages: u64) -> u64 {
        if self.ghost_pages.is_empty() {
            self.ops_since_cleanup = 0;
            return 0;
        }
        let take = if max_pages == 0 {
            self.ghost_pages.len()
        } else {
            (max_pages as usize).min(self.ghost_pages.len())
        };
        if take < self.ghost_pages.len() {
            // Partial pass: pop the highest-offset ghosts off the sorted
            // backlog (O(take · log G)), keep the rest queued.  The pops
            // arrive in descending order, so `free_pages` coalesces the
            // backlog's contiguous stretches into run-sized releases.
            let popped: Vec<PageId> = (0..take)
                .map(|_| self.ghost_pages.pop_last().expect("backlog is non-empty"))
                .collect();
            self.lob_unit.free_pages(&mut self.gam, popped);
        } else {
            let backlog = std::mem::take(&mut self.ghost_pages);
            self.lob_unit.free_pages(&mut self.gam, backlog);
        }
        self.ops_since_cleanup = 0;
        self.stats.ghost_cleanups += 1;
        take as u64
    }

    /// Pages currently awaiting ghost cleanup.
    pub fn ghost_page_count(&self) -> u64 {
        self.ghost_pages.len() as u64
    }

    /// Per-object fragment counts (the paper's headline metric).
    ///
    /// Answered from the incremental tracker in O(distinct fragment counts)
    /// — independent of the number of live objects, so the maintenance
    /// scheduler can observe it every tick.
    pub fn fragmentation(&self) -> lor_alloc::FragmentationSummary {
        self.frag_tracker.summary()
    }

    /// Keeps the compactor's candidate index in sync with a blob's fragment
    /// count.  Pass `old_fragments == 0` for a brand-new blob and
    /// `new_fragments == 0` for a removed one; only blobs with more than one
    /// fragment are candidates.
    fn reindex_candidate(&mut self, id: BlobId, old_fragments: u64, new_fragments: u64) {
        if old_fragments > 1 {
            self.compact_candidates
                .remove(&(old_fragments, std::cmp::Reverse(id)));
        }
        if new_fragments > 1 {
            self.compact_candidates
                .insert((new_fragments, std::cmp::Reverse(id)));
        }
    }

    /// Free page runs a LOB allocation can draw from: the unit's free page
    /// runs plus whole unassigned GAM extents (in pages), sorted by start.
    fn free_page_runs(&self) -> Vec<Extent> {
        let mut runs = self.lob_unit.free_space().free_runs();
        runs.extend(
            self.gam
                .free_space()
                .free_runs()
                .into_iter()
                .map(|run| Extent::new(run.start * PAGES_PER_EXTENT, run.len * PAGES_PER_EXTENT)),
        );
        runs.sort_unstable_by_key(|run| run.start);
        runs
    }

    /// Free-space shape report over LOB pages.
    pub fn free_space_report(&self) -> FreeSpaceReport {
        FreeSpaceReport::from_runs(self.config.total_pages(), &self.free_page_runs())
    }

    /// Occupancy of the placement bands over the engine's pages — the
    /// probe-tick gauge behind "is the compactor crowding the foreground
    /// band?".  Under [`PlacementPolicy::Unrestricted`] the whole filegroup
    /// is the foreground band.
    pub fn band_occupancy(&self) -> BandOccupancy {
        let total = self.config.total_pages();
        let boundary = self.config.placement.boundary_cluster(total);
        BandOccupancy::from_runs(total, boundary, &self.free_page_runs())
    }

    /// Full-scan recompute of [`Database::fragmentation`] — the oracle the
    /// property tests compare the incremental tracker against.
    pub fn fragmentation_rescan(&self) -> lor_alloc::FragmentationSummary {
        let counts: Vec<u64> = self
            .blobs
            .values()
            .map(|b| b.fragment_count() as u64)
            .collect();
        lor_alloc::FragmentationSummary::from_counts(&counts)
    }

    /// Rebuilds the table into a new filegroup: every object is copied, in
    /// key order, into freshly allocated sequential extents, and the old
    /// allocation state is discarded.  Returns the payload bytes copied.
    ///
    /// This is the defragmentation procedure the paper reports Microsoft
    /// recommending for LOB data ("create a new table in a new file group,
    /// copy the old records to the new table and drop the old table").
    pub fn rebuild_into_new_filegroup(&mut self) -> Result<u64, DbError> {
        let mut new_gam = Gam::with_placement(
            self.config.total_extents(),
            self.config.allocation_policy,
            self.config.placement,
        );
        let mut new_lob = AllocationUnit::with_placement(
            PageKind::LobData,
            self.config.total_pages(),
            self.config.allocation_policy,
            self.config.placement,
        );
        let mut new_row = AllocationUnit::with_placement(
            PageKind::RowData,
            self.config.total_pages(),
            self.config.allocation_policy,
            self.config.placement,
        );

        // Row pages for the clustered index of the copied table.
        let row_pages_needed = self.row_count.div_ceil(self.config.rows_per_page);
        if row_pages_needed > 0 {
            new_row.allocate_pages_high(&mut new_gam, row_pages_needed)?;
        }

        let mut copied = 0u64;
        // Copy in key order (a clustered-index scan of the old table).
        let ordered: Vec<BlobId> = self.keys.values().copied().collect();
        for id in ordered {
            let record = self
                .blobs
                .get_mut(&id)
                .expect("key map and blob map are consistent");
            let pages = new_lob.allocate_pages(&mut new_gam, record.page_count())?;
            let old_fragments = record.fragment_count() as u64;
            record.pages = pages;
            let new_fragments = record.fragment_count() as u64;
            copied += record.size_bytes;
            self.frag_tracker
                .record_replace(old_fragments, new_fragments);
            self.reindex_candidate(id, old_fragments, new_fragments);
        }

        self.gam = new_gam;
        self.lob_unit = new_lob;
        self.row_unit = new_row;
        self.ghost_pages.clear();
        self.stats.row_pages = row_pages_needed;
        Ok(copied)
    }

    /// Runs one bounded increment of online compaction: rewrites the most
    /// fragmented blobs into fresh contiguous runs, stopping once about
    /// `page_budget` LOB pages have been moved (0 means unlimited).
    ///
    /// This is the incremental middle ground between doing nothing and the
    /// offline [`Database::rebuild_into_new_filegroup`]: a background
    /// maintenance scheduler can spend a few pages per tick and keep
    /// fragments/object bounded without ever taking the table offline.  Each
    /// candidate is rewritten into the largest free runs *the engine's
    /// placement policy lets maintenance touch*
    /// ([`AllocationUnit::allocate_maintenance_runs`]): under
    /// [`PlacementPolicy::Unrestricted`] that is any run (the pre-placement
    /// behaviour, bit-identical); under [`PlacementPolicy::Banded`] the
    /// compactor relocates into the maintenance band and skips candidates
    /// the band cannot hold, and under [`PlacementPolicy::Reserve`] it
    /// leaves every run longer than the largest live blob's allocation to
    /// the foreground — so compaction strictly grows the contiguous space
    /// foreground writes can draw from instead of racing them for it.  The
    /// move commits only if it strictly reduces the blob's fragment count,
    /// and rolls back otherwise — so a step never makes any blob worse.
    /// Old pages are freed immediately: compaction runs in its own
    /// transaction.  At least one candidate is examined per call even when
    /// `page_budget` is smaller than the blob, so compaction never starves.
    pub fn compact_step(&mut self, page_budget: u64) -> CompactReport {
        // The candidate index is kept sorted incrementally; iterating it in
        // reverse yields fragment count descending / id ascending, the exact
        // order the old sort-every-blob scan produced, in O(candidates)
        // instead of O(objects × pages) per tick.
        let candidates: Vec<(BlobId, usize)> = self
            .compact_candidates
            .iter()
            .rev()
            .map(|&(fragments, std::cmp::Reverse(id))| (id, fragments as usize))
            .collect();
        let watermark_pages = self.foreground_watermark_pages();

        // Under the unrestricted placement the relocation allocator is
        // largest-first, so how many fragments it would hand a candidate is
        // decidable read-only from the free-run size profile (see
        // `planned_fragments`).  Most candidates in a churning store are
        // *unimprovable* — their fragment count already matches what the
        // free space can offer — and without the plan each of them costs a
        // full speculative allocate-then-roll-back cycle.  The profile stays
        // valid across skips and rollbacks (both leave free space untouched)
        // and is rebuilt lazily after a committed move.
        let planned = self.config.placement.is_unrestricted();
        let mut profile: Option<Vec<u64>> = None;

        let mut report = CompactReport::default();
        for (id, fragments) in candidates {
            if page_budget > 0 && report.pages_moved >= page_budget {
                break;
            }
            report.blobs_examined += 1;
            report.fragments_before += fragments as u64;
            let (need, size_bytes) = {
                let record = &self.blobs[&id];
                (record.page_count(), record.size_bytes)
            };
            if planned {
                // Any candidate's need is bounded by the largest live blob,
                // so the profile never has to look past the watermark.
                let profile = profile.get_or_insert_with(|| {
                    Self::free_run_profile(&self.lob_unit, &self.gam, watermark_pages.max(1))
                });
                if Self::planned_fragments(profile, need) >= fragments as u64 {
                    report.blobs_skipped += 1;
                    report.fragments_after += fragments as u64;
                    continue;
                }
            }
            let new_pages =
                match self
                    .lob_unit
                    .allocate_maintenance_runs(&mut self.gam, need, watermark_pages)
                {
                    Some(pages) => pages,
                    None => {
                        report.blobs_skipped += 1;
                        report.fragments_after += fragments as u64;
                        continue;
                    }
                };
            let new_fragments = crate::page::fragment_count(&new_pages);
            if new_fragments >= fragments {
                // Not an improvement: roll the speculative allocation back.
                self.lob_unit.free_pages(&mut self.gam, new_pages);
                report.blobs_skipped += 1;
                report.fragments_after += fragments as u64;
                continue;
            }
            let record = self
                .blobs
                .get_mut(&id)
                .expect("candidate ids are live blobs");
            let old_pages = std::mem::replace(&mut record.pages, new_pages);
            self.frag_tracker
                .record_replace(fragments as u64, new_fragments as u64);
            self.reindex_candidate(id, fragments as u64, new_fragments as u64);
            self.lob_unit.free_pages(&mut self.gam, old_pages);
            profile = None;
            self.stats.pages_allocated += need;
            report.blobs_moved += 1;
            report.pages_moved += need;
            report.bytes_copied += size_bytes;
            report.fragments_after += new_fragments as u64;
        }
        report
    }

    /// Prefix sums of the free-run sizes a maintenance relocation can draw
    /// from — the unit's free page runs and whole unassigned GAM runs (in
    /// pages) — merged largest first, truncated once the sum reaches
    /// `cap_pages` (no candidate needs more, so further runs cannot change
    /// any planning answer).
    ///
    /// Because taking one run leaves every other run's length unchanged, the
    /// largest-first allocator consumes runs exactly in this order, so the
    /// prefix sums answer "how many fragments would `need` pages cost"
    /// without mutating anything (see [`Database::planned_fragments`]).
    fn free_run_profile(lob_unit: &AllocationUnit, gam: &Gam, cap_pages: u64) -> Vec<u64> {
        let mut unit = lob_unit.free_space().run_lens_desc().peekable();
        let mut gam_runs = gam
            .free_space()
            .run_lens_desc()
            .map(|extents| extents * PAGES_PER_EXTENT)
            .peekable();
        let mut prefix = Vec::new();
        let mut sum = 0u64;
        while sum < cap_pages {
            // Prefer the unit run on ties, as the allocator does (the tie
            // order cannot change the *count*, only which equal-sized run is
            // consumed first).
            let next = match (unit.peek(), gam_runs.peek()) {
                (Some(&u), Some(&g)) if u >= g => unit.next(),
                (Some(_), Some(_)) => gam_runs.next(),
                (Some(_), None) => unit.next(),
                (None, Some(_)) => gam_runs.next(),
                (None, None) => break,
            };
            sum += next.expect("peeked iterator yields");
            prefix.push(sum);
        }
        prefix
    }

    /// Fragments a largest-first relocation of `need` pages would produce
    /// given [`Database::free_run_profile`], or `u64::MAX` when the free
    /// space cannot supply `need` pages at all.
    ///
    /// This is an upper bound on the resulting `fragment_count`: in the rare
    /// case where two consumed runs happen to be page-adjacent (a unit run
    /// ending exactly where a freshly adopted extent begins) the real count
    /// comes out lower, so a skip based on this bound can at worst postpone
    /// an improvable candidate to a later tick — it never commits a move the
    /// old allocate-then-check path would have rolled back.
    fn planned_fragments(profile: &[u64], need: u64) -> u64 {
        if need == 0 {
            return 0;
        }
        let takes = profile.partition_point(|&total| total < need);
        if takes == profile.len() {
            return u64::MAX;
        }
        takes as u64 + 1
    }

    /// The largest contiguous allocation (in LOB pages) a single foreground
    /// operation could still need: the page count of the largest live blob,
    /// since a wholesale update writes a complete replacement version.  The
    /// [`PlacementPolicy::Reserve`] variant forbids the compactor from
    /// consuming any free run longer than this watermark.
    pub fn foreground_watermark_pages(&self) -> u64 {
        self.page_tracker.max().unwrap_or(0)
    }

    /// Read-only access to the Global Allocation Map, for placement
    /// instrumentation (the proptests measure the foreground band's largest
    /// free run across compaction steps).
    pub fn gam(&self) -> &Gam {
        &self.gam
    }

    /// Read-only access to the LOB allocation unit (see [`Database::gam`]).
    pub fn lob_unit(&self) -> &AllocationUnit {
        &self.lob_unit
    }

    /// Allocates LOB pages, forcing a ghost cleanup if the free pool is
    /// exhausted but ghosts exist (allocation pressure).
    fn allocate_lob_pages(&mut self, pages: u64) -> Result<Vec<PageId>, DbError> {
        if pages > self.lob_unit.available_pages(&self.gam) && !self.ghost_pages.is_empty() {
            self.stats.forced_cleanups += 1;
            self.ghost_cleanup();
        }
        let allocated = self.lob_unit.allocate_pages(&mut self.gam, pages)?;
        self.stats.pages_allocated += allocated.len() as u64;
        Ok(allocated)
    }

    /// Adds a metadata row, allocating a new clustered-index page when the
    /// current ones are full.
    fn insert_metadata_row(&mut self) -> Result<(), DbError> {
        self.row_count += 1;
        let needed = self.row_count.div_ceil(self.config.rows_per_page);
        while self.stats.row_pages < needed {
            self.row_unit.allocate_pages_high(&mut self.gam, 1)?;
            self.stats.row_pages += 1;
        }
        Ok(())
    }

    fn receipt_for(&self, record: &BlobRecord) -> DbWriteReceipt {
        Self::receipt_for_parts(&self.config, record.id, &record.pages, record.size_bytes)
    }

    fn receipt_for_parts(
        config: &EngineConfig,
        id: BlobId,
        pages: &[PageId],
        size_bytes: u64,
    ) -> DbWriteReceipt {
        let runs = crate::page::page_runs(pages)
            .into_iter()
            .map(|(first, count)| {
                ByteRun::new(
                    config.base_offset + first.0 * config.page_size,
                    count * config.page_size,
                )
            })
            .collect();
        DbWriteReceipt {
            blob_id: id,
            runs,
            bytes_written: size_bytes,
            pages_written: pages.len() as u64,
        }
    }

    fn bump_op(&mut self) {
        self.ops_since_cleanup += 1;
        if self.config.ghost_cleanup_interval_ops > 0
            && self.ops_since_cleanup >= self.config.ghost_cleanup_interval_ops
        {
            self.ghost_cleanup();
        }
    }

    /// Convenience used by tests and the ablation benches: the extent ids of
    /// an object's pages, deduplicated and in logical order.
    pub fn extents_of(&self, key: &str) -> Result<Vec<ExtentId>, DbError> {
        let record = self.get(key)?;
        let mut extents: Vec<ExtentId> = Vec::new();
        for page in &record.pages {
            let extent = page.extent();
            if extents.last() != Some(&extent) {
                extents.push(extent);
            }
        }
        Ok(extents)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lor_alloc::FreeSpace;

    const MB: u64 = 1 << 20;

    fn small_db() -> Database {
        Database::create(EngineConfig::new(256 * MB)).unwrap()
    }

    #[test]
    fn bad_configs_are_rejected() {
        assert!(Database::create(EngineConfig {
            page_size: 0,
            ..EngineConfig::new(MB)
        })
        .is_err());
        assert!(Database::create(EngineConfig {
            lob_payload_per_page: 0,
            ..EngineConfig::new(MB)
        })
        .is_err());
        assert!(Database::create(EngineConfig {
            lob_payload_per_page: 9000,
            ..EngineConfig::new(MB)
        })
        .is_err());
        assert!(Database::create(EngineConfig {
            rows_per_page: 0,
            ..EngineConfig::new(MB)
        })
        .is_err());
        assert!(Database::create(EngineConfig::new(1000)).is_err());
    }

    #[test]
    fn insert_get_delete_round_trip() {
        let mut db = small_db();
        let receipt = db.insert("obj-1", MB).unwrap();
        assert_eq!(receipt.bytes_written, MB);
        assert_eq!(receipt.pages_written, db.config().pages_for(MB));

        let record = db.get("obj-1").unwrap();
        assert_eq!(record.size_bytes, MB);
        assert_eq!(record.id, receipt.blob_id);
        assert_eq!(db.object_count(), 1);
        assert!(db.get_by_id(receipt.blob_id).is_some());

        let plan = db.read_plan("obj-1").unwrap();
        let transferred: u64 = plan.iter().map(|r| r.len).sum();
        assert!(transferred >= MB, "whole pages are read");

        db.delete("obj-1").unwrap();
        assert!(db.get("obj-1").is_err());
        assert_eq!(db.object_count(), 0);
        assert!(db.ghost_page_count() > 0, "deleted pages await cleanup");
    }

    #[test]
    fn duplicate_keys_and_missing_keys_error() {
        let mut db = small_db();
        db.insert("a", 1000).unwrap();
        assert!(matches!(db.insert("a", 1000), Err(DbError::KeyExists(_))));
        assert!(matches!(
            db.update("ghost", 1000),
            Err(DbError::NoSuchKey(_))
        ));
        assert!(matches!(db.delete("ghost"), Err(DbError::NoSuchKey(_))));
        assert!(matches!(db.read_plan("ghost"), Err(DbError::NoSuchKey(_))));
    }

    #[test]
    fn insert_as_maintenance_respects_the_placement_band() {
        let placement = PlacementPolicy::banded(0.7);
        let mut config = EngineConfig::new(64 * MB);
        config.placement = placement;
        let mut db = Database::create(config).unwrap();
        let boundary_page =
            placement.boundary_cluster(db.config().total_extents()) * PAGES_PER_EXTENT;

        let receipt = db.insert_as_maintenance("migrant", 2 * MB).unwrap();
        assert_eq!(receipt.bytes_written, 2 * MB);
        let record = db.get("migrant").unwrap();
        for page in &record.pages {
            assert!(
                page.0 >= boundary_page,
                "migration wrote into the foreground band: page {} < boundary {}",
                page.0,
                boundary_page
            );
        }

        // A migration the maintenance band cannot hold must fail outright
        // rather than spill into the foreground band, leaving no object.
        let before = db.object_count();
        assert!(matches!(
            db.insert_as_maintenance("too-big", 60 * MB),
            Err(DbError::OutOfSpace { .. })
        ));
        assert_eq!(db.object_count(), before);
        assert!(db.get("too-big").is_err());
    }

    #[test]
    fn bulk_load_lays_objects_out_contiguously() {
        let mut db = small_db();
        for i in 0..32 {
            db.insert(&format!("obj-{i}"), 512 * 1024).unwrap();
        }
        let summary = db.fragmentation();
        assert_eq!(summary.objects, 32);
        assert!(
            summary.fragments_per_object < 1.5,
            "clean bulk load should be nearly contiguous, got {}",
            summary.fragments_per_object
        );
    }

    #[test]
    fn update_replaces_the_version_and_ghosts_the_old_pages() {
        let mut db = small_db();
        db.insert("doc", 2 * MB).unwrap();
        let old_pages = db.get("doc").unwrap().pages.clone();
        let receipt = db.update("doc", 3 * MB).unwrap();
        let record = db.get("doc").unwrap();
        assert_eq!(record.size_bytes, 3 * MB);
        assert_eq!(record.pages.len() as u64, receipt.pages_written);
        assert_ne!(record.pages, old_pages);
        assert_eq!(db.ghost_page_count(), old_pages.len() as u64);
        assert_eq!(db.object_count(), 1);
        assert_eq!(db.stats().updates, 1);
    }

    #[test]
    fn batched_updates_interleave_and_fragment() {
        let mut db = Database::create(EngineConfig::new(128 * MB)).unwrap();
        for i in 0..16 {
            db.insert(&format!("obj-{i}"), 2 * MB).unwrap();
        }
        for _ in 0..4 {
            for group in (0..16).collect::<Vec<_>>().chunks(4) {
                let names: Vec<String> = group.iter().map(|i| format!("obj-{i}")).collect();
                let items: Vec<(&str, u64)> = names.iter().map(|n| (n.as_str(), 2 * MB)).collect();
                let receipts = db.update_batch(&items, 64 * 1024).unwrap();
                assert_eq!(receipts.len(), 4);
                for receipt in &receipts {
                    assert_eq!(receipt.bytes_written, 2 * MB);
                    assert_eq!(receipt.pages_written, db.config().pages_for(2 * MB));
                }
            }
        }
        assert_eq!(db.object_count(), 16);
        let summary = db.fragmentation();
        assert!(
            summary.fragments_per_object > 1.5,
            "interleaved updates should fragment, got {}",
            summary.fragments_per_object
        );
        // Every object still reads back in full and no page is shared.
        let mut seen = std::collections::HashSet::new();
        for blob in db.iter_blobs() {
            for page in &blob.pages {
                assert!(seen.insert(*page));
            }
        }
    }

    #[test]
    fn failed_batch_update_leaks_no_pages() {
        let mut config = EngineConfig::new(16 * MB);
        config.ghost_cleanup_interval_ops = 1_000_000; // manual
        let mut db = Database::create(config).unwrap();
        db.insert("a", 5 * MB).unwrap();
        db.insert("b", 5 * MB).unwrap();
        let free_before = db.free_bytes();
        let pages_before = db.stats().pages_allocated;

        // Replacing both concurrently needs old + new versions simultaneously
        // (~20 MB in a 16 MB file, no ghosts to reclaim): the batch fails
        // mid-allocation and must roll every already-allocated page back.
        let err = db
            .update_batch(&[("a", 5 * MB), ("b", 5 * MB)], 64 * 1024)
            .unwrap_err();
        assert!(matches!(err, DbError::OutOfSpace { .. }));
        assert_eq!(db.free_bytes(), free_before, "no pages may leak");
        assert_eq!(db.stats().pages_allocated, pages_before);
        assert_eq!(
            db.get("a").unwrap().size_bytes,
            5 * MB,
            "originals untouched"
        );
        assert_eq!(db.get("b").unwrap().size_bytes, 5 * MB);
        assert_eq!(db.stats().updates, 0);

        // The rolled-back space is genuinely reusable.
        db.update("a", 4 * MB).unwrap();
        assert_eq!(db.get("a").unwrap().size_bytes, 4 * MB);
    }

    #[test]
    fn ghost_cleanup_returns_whole_extents_to_the_gam() {
        let mut config = EngineConfig::new(64 * MB);
        config.ghost_cleanup_interval_ops = 1_000_000; // manual
        let mut db = Database::create(config).unwrap();
        db.insert("a", 4 * MB).unwrap();
        let free_before = db.lob_unit.available_pages(&db.gam);
        db.delete("a").unwrap();
        assert_eq!(
            db.lob_unit.available_pages(&db.gam),
            free_before,
            "ghosts are not yet free"
        );
        db.ghost_cleanup();
        assert!(db.lob_unit.available_pages(&db.gam) > free_before);
        assert_eq!(db.ghost_page_count(), 0);
    }

    #[test]
    fn bounded_ghost_cleanup_releases_the_tail_first() {
        let mut config = EngineConfig::new(64 * MB);
        config.ghost_cleanup_interval_ops = 1_000_000; // manual
        let mut db = Database::create(config).unwrap();
        for i in 0..8 {
            db.insert(&format!("o{i}"), MB).unwrap();
        }
        // Delete in insertion order so the ghost list's *oldest* entries are
        // the *lowest* offsets.
        for i in 0..8 {
            db.delete(&format!("o{i}")).unwrap();
        }
        let backlog = db.ghost_page_count();
        assert!(backlog > 16);

        let pages_of_a_blob = db.config().pages_for(MB);
        let reclaimed = db.ghost_cleanup_limited(pages_of_a_blob);
        assert_eq!(reclaimed, pages_of_a_blob);
        assert_eq!(
            db.ghost_page_count(),
            backlog - reclaimed,
            "only the budgeted pages were released"
        );
        // A second bounded pass keeps eating from the (new) tail.
        let before: Vec<_> = db.ghost_pages.iter().copied().collect();
        db.ghost_cleanup_limited(pages_of_a_blob);
        let after: Vec<_> = db.ghost_pages.iter().copied().collect();
        let released: Vec<_> = before.iter().filter(|p| !after.contains(p)).collect();
        let kept_max = after.iter().max().unwrap();
        assert!(
            released.iter().all(|p| *p > kept_max),
            "released ghosts ({released:?}) must all sit above the kept backlog (max {kept_max:?})"
        );
        // An unbounded pass drains the rest.
        db.ghost_cleanup();
        assert_eq!(db.ghost_page_count(), 0);
    }

    #[test]
    fn allocation_pressure_forces_a_cleanup() {
        let mut config = EngineConfig::new(16 * MB);
        config.ghost_cleanup_interval_ops = 1_000_000;
        let mut db = Database::create(config).unwrap();
        db.insert("a", 12 * MB).unwrap();
        db.delete("a").unwrap();
        let before = db.stats().forced_cleanups;
        db.insert("b", 12 * MB).unwrap();
        assert_eq!(db.stats().forced_cleanups, before + 1);
    }

    #[test]
    fn out_of_space_is_reported() {
        let mut db = Database::create(EngineConfig::new(4 * MB)).unwrap();
        assert!(matches!(
            db.insert("too-big", 16 * MB),
            Err(DbError::OutOfSpace { .. })
        ));
        // The failed insert leaves no trace.
        assert_eq!(db.object_count(), 0);
        assert!(db.get("too-big").is_err());
    }

    #[test]
    fn metadata_rows_allocate_clustered_index_pages() {
        let mut config = EngineConfig::new(64 * MB);
        config.rows_per_page = 4;
        let mut db = Database::create(config).unwrap();
        for i in 0..9 {
            db.insert(&format!("k{i}"), 1000).unwrap();
        }
        assert_eq!(
            db.stats().row_pages,
            3,
            "9 rows at 4 rows/page need 3 pages"
        );
    }

    #[test]
    fn aged_database_fragments_and_rebuild_repairs_it() {
        let mut db = Database::create(EngineConfig::new(64 * MB)).unwrap();
        let object = MB;
        let count = 24; // ~24 MB live in a 64 MB file
        for i in 0..count {
            db.insert(&format!("obj-{i}"), object).unwrap();
        }
        // Age the store: several rounds of wholesale replacement in a
        // scattered order.
        for round in 0..8 {
            for i in 0..count {
                let key = format!("obj-{}", (i * 7 + round) % count);
                db.update(&key, object).unwrap();
            }
        }
        let aged = db.fragmentation();
        assert!(
            aged.fragments_per_object > 1.2,
            "aging must fragment the store, got {}",
            aged.fragments_per_object
        );

        let copied = db.rebuild_into_new_filegroup().unwrap();
        assert_eq!(copied, count * object);
        let rebuilt = db.fragmentation();
        assert!(
            rebuilt.fragments_per_object < aged.fragments_per_object,
            "rebuild must reduce fragmentation ({} -> {})",
            aged.fragments_per_object,
            rebuilt.fragments_per_object
        );
        // Every object still reads back in full.
        for i in 0..count {
            let plan = db.read_plan(&format!("obj-{i}")).unwrap();
            assert!(plan.iter().map(|r| r.len).sum::<u64>() >= object);
        }
    }

    /// Ages a small engine so several blobs end up fragmented.
    fn aged_db() -> Database {
        let mut db = Database::create(EngineConfig::new(64 * MB)).unwrap();
        let count = 24;
        for i in 0..count {
            db.insert(&format!("obj-{i}"), MB).unwrap();
        }
        for round in 0..8 {
            for i in 0..count {
                db.update(&format!("obj-{}", (i * 7 + round) % count), MB)
                    .unwrap();
            }
        }
        db.ghost_cleanup();
        db
    }

    #[test]
    fn compact_steps_reduce_fragmentation_incrementally() {
        let mut db = aged_db();
        let before = db.fragmentation();
        assert!(before.fragments_per_object > 1.2, "fixture must be aged");

        let mut steps = 0;
        let mut previous = before.total_fragments;
        loop {
            let report = db.compact_step(32);
            let now = db.fragmentation().total_fragments;
            assert!(now <= previous, "a step may never add fragments");
            previous = now;
            steps += 1;
            assert!(steps < 10_000, "compaction must terminate");
            if report.blobs_moved == 0 {
                break;
            }
            assert!(
                report.pages_moved <= 32 + db.config().pages_for(MB),
                "budget is a soft cap: at most one blob of overshoot"
            );
        }
        let after = db.fragmentation();
        assert!(
            after.fragments_per_object < before.fragments_per_object,
            "compaction must reduce fragmentation ({} -> {})",
            before.fragments_per_object,
            after.fragments_per_object
        );
        // Every object still reads back in full and no page is shared.
        let mut seen = std::collections::HashSet::new();
        for blob in db.iter_blobs() {
            assert_eq!(blob.page_count(), db.config().pages_for(MB));
            for page in &blob.pages {
                assert!(seen.insert(*page));
            }
        }
    }

    /// Ages a small engine under an explicit placement policy.
    fn aged_db_placed(placement: PlacementPolicy) -> Database {
        let mut config = EngineConfig::new(64 * MB);
        config.placement = placement;
        let mut db = Database::create(config).unwrap();
        let count = 24;
        for i in 0..count {
            db.insert(&format!("obj-{i}"), MB).unwrap();
        }
        for round in 0..8 {
            for i in 0..count {
                db.update(&format!("obj-{}", (i * 7 + round) % count), MB)
                    .unwrap();
            }
        }
        db.ghost_cleanup();
        db
    }

    /// The largest free run (in pages) the foreground band offers, over the
    /// *combined* page-level availability: free pages inside assigned
    /// extents plus every page of every unassigned GAM extent, coalesced.
    /// (The two maps individually are not monotone under compaction — a
    /// fully drained extent migrates from the unit map to the GAM — but
    /// their union below the boundary only ever grows.)
    fn foreground_band_largest(db: &Database) -> u64 {
        let boundary_page = db
            .config()
            .placement
            .boundary_cluster(db.config().total_extents())
            * PAGES_PER_EXTENT;
        let mut runs: Vec<lor_alloc::Extent> = db
            .lob_unit()
            .free_space()
            .free_runs()
            .into_iter()
            .chain(db.gam().free_space().free_runs().into_iter().map(|run| {
                lor_alloc::Extent::new(run.start * PAGES_PER_EXTENT, run.len * PAGES_PER_EXTENT)
            }))
            .collect();
        runs.sort_by_key(|run| run.start);
        let mut largest = 0u64;
        let mut current: Option<lor_alloc::Extent> = None;
        for run in runs {
            match current.as_mut() {
                Some(open) if run.start <= open.end() => {
                    open.len = open.len.max(run.end() - open.start);
                }
                _ => {
                    current = Some(run);
                }
            }
            let open = current.expect("just set");
            largest = largest.max(open.end().min(boundary_page).saturating_sub(open.start));
        }
        largest
    }

    #[test]
    fn banded_compaction_relocates_into_the_maintenance_band() {
        let placement = PlacementPolicy::banded(0.75);
        let mut db = aged_db_placed(placement);
        let boundary_page =
            placement.boundary_cluster(db.config().total_extents()) * PAGES_PER_EXTENT;
        let before = db.fragmentation();
        assert!(before.fragments_per_object > 1.2, "fixture must be aged");

        let mut moved_any = false;
        for _ in 0..256 {
            let largest_before = foreground_band_largest(&db);
            let report = db.compact_step(32);
            let largest_after = foreground_band_largest(&db);
            // Compaction reserves only in the maintenance band and frees
            // anywhere, so the foreground band's largest free run can only
            // grow.
            assert!(
                largest_after >= largest_before,
                "a compact step shrank the foreground band \
                 ({largest_before} -> {largest_after})"
            );
            if report.blobs_moved == 0 {
                break;
            }
            moved_any = true;
        }
        assert!(moved_any, "the banded compactor must make progress");
        let after = db.fragmentation();
        assert!(
            after.fragments_per_object < before.fragments_per_object,
            "banded compaction must still repair fragmentation ({} -> {})",
            before.fragments_per_object,
            after.fragments_per_object
        );
        // At least one moved blob physically sits in the maintenance band.
        assert!(
            db.iter_blobs()
                .any(|blob| blob.pages.iter().all(|page| page.0 >= boundary_page)),
            "no blob ended up in the maintenance band"
        );
    }

    #[test]
    fn banded_compaction_skips_gracefully_when_the_band_cannot_hold_a_blob() {
        // Boundary at 99%: the maintenance band (~80 pages) is smaller than
        // any 1 MB blob (130 pages), so every candidate must be refused —
        // without deadlock, spill-over, or foreground-band damage.
        let placement = PlacementPolicy::banded(0.99);
        let mut db = aged_db_placed(placement);
        assert!(db.fragmentation().fragments_per_object > 1.2);

        let largest_before = foreground_band_largest(&db);
        let layouts_before: Vec<_> = db.iter_blobs().map(|b| b.pages.clone()).collect();
        for _ in 0..4 {
            let report = db.compact_step(0);
            assert_eq!(report.blobs_moved, 0, "no candidate fits the band");
            assert!(report.blobs_skipped > 0, "candidates are skipped, not lost");
        }
        let layouts_after: Vec<_> = db.iter_blobs().map(|b| b.pages.clone()).collect();
        assert_eq!(layouts_before, layouts_after, "layouts untouched");
        assert_eq!(foreground_band_largest(&db), largest_before);
    }

    #[test]
    fn reserve_compaction_leaves_gam_runs_above_the_watermark_untouched() {
        let mut db = aged_db_placed(PlacementPolicy::Reserve);
        let watermark_extents = db.foreground_watermark_pages() / PAGES_PER_EXTENT;
        let big_runs: Vec<_> = db
            .gam()
            .free_space()
            .free_runs()
            .into_iter()
            .filter(|run| run.len > watermark_extents)
            .collect();
        assert!(
            !big_runs.is_empty(),
            "fixture must offer a GAM run above the watermark"
        );
        loop {
            if db.compact_step(64).blobs_moved == 0 {
                break;
            }
        }
        for run in big_runs {
            assert!(
                db.gam().free_space().is_free(run),
                "GAM run {run:?} above the watermark must survive compaction"
            );
        }
    }

    /// Oracle: under [`PlacementPolicy::Unrestricted`] the placement-aware
    /// compactor reproduces the pre-placement `compact_step` bit-identically.
    /// The replica below is the PR 4 loop — candidates most fragmented
    /// first, `allocate_largest_runs`, commit only on strict improvement.
    #[test]
    fn unrestricted_compaction_is_bit_identical_to_the_legacy_step() {
        let mut new_path = aged_db();
        let mut legacy = new_path.clone();

        loop {
            if new_path.compact_step(32).blobs_moved == 0 {
                break;
            }
        }

        loop {
            let mut candidates: Vec<(BlobId, usize)> = legacy
                .blobs
                .values()
                .filter(|record| record.fragment_count() > 1)
                .map(|record| (record.id, record.fragment_count()))
                .collect();
            candidates.sort_by_key(|(_, fragments)| std::cmp::Reverse(*fragments));
            let mut moved = 0;
            let mut pages_moved = 0;
            for (id, fragments) in candidates {
                if pages_moved >= 32 {
                    break;
                }
                let need = legacy.blobs[&id].page_count();
                let Some(new_pages) = legacy.lob_unit.allocate_largest_runs(&mut legacy.gam, need)
                else {
                    continue;
                };
                if crate::page::fragment_count(&new_pages) >= fragments {
                    for page in new_pages {
                        legacy.lob_unit.free_page(&mut legacy.gam, page);
                    }
                    continue;
                }
                let record = legacy.blobs.get_mut(&id).unwrap();
                let old_pages = std::mem::replace(&mut record.pages, new_pages);
                for page in old_pages {
                    legacy.lob_unit.free_page(&mut legacy.gam, page);
                }
                moved += 1;
                pages_moved += need;
            }
            if moved == 0 {
                break;
            }
        }

        let new_layouts: Vec<_> = new_path.iter_blobs().map(|b| b.pages.clone()).collect();
        let legacy_layouts: Vec<_> = legacy.iter_blobs().map(|b| b.pages.clone()).collect();
        assert_eq!(new_layouts, legacy_layouts);
        assert_eq!(
            new_path.gam().free_space().free_runs(),
            legacy.gam().free_space().free_runs()
        );
        assert_eq!(
            new_path.lob_unit().free_space().free_runs(),
            legacy.lob_unit().free_space().free_runs()
        );
    }

    #[test]
    fn compact_step_on_a_clean_store_is_a_no_op() {
        let mut db = small_db();
        for i in 0..8 {
            db.insert(&format!("obj-{i}"), MB).unwrap();
        }
        let report = db.compact_step(0);
        assert_eq!(report.blobs_examined, 0);
        assert_eq!(report.pages_moved, 0);
    }

    #[test]
    fn zero_ghost_cleanup_interval_disables_automatic_cleanup() {
        let mut config = EngineConfig::new(64 * MB);
        config.ghost_cleanup_interval_ops = 0;
        let mut db = Database::create(config).unwrap();
        db.insert("a", MB).unwrap();
        for _ in 0..20 {
            db.update("a", MB).unwrap();
        }
        assert!(db.ghost_page_count() > 0, "ghosts must accumulate");
        assert_eq!(db.stats().ghost_cleanups, 0);
        assert_eq!(db.stats().forced_cleanups, 0);
        db.ghost_cleanup();
        assert_eq!(db.ghost_page_count(), 0);
    }

    #[test]
    fn extents_of_reports_logical_extent_order() {
        let mut db = small_db();
        db.insert("a", 256 * 1024).unwrap();
        let extents = db.extents_of("a").unwrap();
        assert!(!extents.is_empty());
        // A clean insert uses consecutive extents.
        for window in extents.windows(2) {
            assert_eq!(window[1].0, window[0].0 + 1);
        }
    }

    #[test]
    fn stats_accumulate() {
        let mut db = small_db();
        db.insert("a", MB).unwrap();
        db.insert("b", MB).unwrap();
        db.update("a", 2 * MB).unwrap();
        db.delete("b").unwrap();
        let stats = db.stats();
        assert_eq!(stats.inserts, 2);
        assert_eq!(stats.updates, 1);
        assert_eq!(stats.deletes, 1);
        assert_eq!(stats.bytes_written, 4 * MB);
        assert_eq!(stats.bytes_deleted, 2 * MB);
        assert!(stats.pages_allocated > 0);
    }
}
