//! BLOB records: the page map of each stored object.
//!
//! SQL Server stores large out-of-row values as a tree of text/image pages
//! (the Exodus design the paper cites).  For fragmentation purposes what
//! matters is the *ordered list of physical pages* holding the object's
//! bytes; the tree's interior nodes are small and cached, so the record here
//! keeps the leaf page list plus the object's logical size.

use lor_disksim::ByteRun;
use serde::{Deserialize, Serialize};

use crate::page::{fragment_count, page_runs, PageId};

/// Identifier of a stored BLOB.  Never reused within the lifetime of an
/// engine instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BlobId(pub u64);

impl std::fmt::Display for BlobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "blob#{}", self.0)
    }
}

/// One stored object: its key, logical size, and leaf page map.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlobRecord {
    /// Stable identifier.
    pub id: BlobId,
    /// Application key (the metadata table's clustered-index key).
    pub key: String,
    /// Logical size in bytes.
    pub size_bytes: u64,
    /// Leaf pages in logical order.
    pub pages: Vec<PageId>,
}

impl BlobRecord {
    /// Creates a record for a freshly inserted object.
    pub fn new(id: BlobId, key: impl Into<String>, size_bytes: u64, pages: Vec<PageId>) -> Self {
        BlobRecord {
            id,
            key: key.into(),
            size_bytes,
            pages,
        }
    }

    /// Number of physically discontiguous page runs (1 = contiguous).
    pub fn fragment_count(&self) -> usize {
        fragment_count(&self.pages)
    }

    /// Number of leaf pages.
    pub fn page_count(&self) -> u64 {
        self.pages.len() as u64
    }

    /// The byte runs a sequential scan of the object's leaf pages touches.
    ///
    /// Whole pages are transferred (the engine reads pages, not payload
    /// bytes), so the total transferred exceeds `size_bytes` by the page
    /// header/packing overhead — one of the streaming-rate disadvantages the
    /// folklore attributes to databases.
    pub fn byte_runs(&self, page_size: u64, base_offset: u64) -> Vec<ByteRun> {
        page_runs(&self.pages)
            .into_iter()
            .map(|(first, count)| {
                ByteRun::new(base_offset + first.0 * page_size, count * page_size)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fragment_and_page_counts() {
        let record = BlobRecord::new(
            BlobId(1),
            "k",
            100,
            vec![PageId(10), PageId(11), PageId(20), PageId(21), PageId(22)],
        );
        assert_eq!(record.page_count(), 5);
        assert_eq!(record.fragment_count(), 2);
        assert_eq!(BlobId(1).to_string(), "blob#1");
    }

    #[test]
    fn byte_runs_cover_whole_pages() {
        let record = BlobRecord::new(
            BlobId(1),
            "k",
            10_000,
            vec![PageId(2), PageId(3), PageId(9)],
        );
        let runs = record.byte_runs(8192, 1_000_000);
        assert_eq!(
            runs,
            vec![
                ByteRun::new(1_000_000 + 2 * 8192, 2 * 8192),
                ByteRun::new(1_000_000 + 9 * 8192, 8192)
            ]
        );
        let transferred: u64 = runs.iter().map(|r| r.len).sum();
        assert!(
            transferred >= record.size_bytes,
            "page reads cover at least the payload"
        );
    }

    #[test]
    fn empty_blob_has_no_runs() {
        let record = BlobRecord::new(BlobId(1), "k", 0, Vec::new());
        assert_eq!(record.fragment_count(), 0);
        assert!(record.byte_runs(8192, 0).is_empty());
    }
}
