//! Cross-crate integration tests: miniature versions of the paper's
//! experiments, asserting the qualitative shapes the paper reports.

use lorepo::core::lor_disksim::SimDuration;
use lorepo::core::{
    analyze_store, compare_systems, measure_mixed_load, run_aging_experiment, AllocationPolicy,
    ExperimentConfig, FitPolicy, LatencySummary, OpenLoop, PlacementPolicy, Series,
    SizeDistribution, StoreKind, StoreServer, WorkloadOp,
};

const MB: u64 = 1 << 20;

fn mini(object_size: u64, volume: u64) -> ExperimentConfig {
    let mut config = ExperimentConfig::paper_default(SizeDistribution::Constant(object_size));
    config.volume_bytes = volume;
    config.read_sample = Some(24);
    config
}

/// Figure 1's qualitative claims: on a clean store the database's read
/// throughput beats the filesystem's for sub-megabyte objects, and aging
/// erodes the database's advantage.
#[test]
fn clean_store_favours_database_and_aging_erodes_it() {
    let config = mini(256 * 1024, 96 * MB);
    let (db, fs) = compare_systems(&config, &[0, 4], true).unwrap();

    let db_clean = db.points[0].read_throughput_mb_s.unwrap();
    let fs_clean = fs.points[0].read_throughput_mb_s.unwrap();
    assert!(
        db_clean > fs_clean,
        "clean store: database ({db_clean:.2} MB/s) should beat the filesystem ({fs_clean:.2} MB/s) at 256 KB"
    );

    let db_drop =
        db.points[0].read_throughput_mb_s.unwrap() / db.points[1].read_throughput_mb_s.unwrap();
    let fs_drop =
        fs.points[0].read_throughput_mb_s.unwrap() / fs.points[1].read_throughput_mb_s.unwrap();
    assert!(
        db_drop >= fs_drop * 0.95,
        "aging should hurt the database at least as much as the filesystem (db x{db_drop:.2}, fs x{fs_drop:.2})"
    );
}

/// Figure 1 / Section 5.2: for large (multi-megabyte) objects the filesystem
/// wins even on a clean store.
#[test]
fn large_objects_favour_the_filesystem_even_when_clean() {
    let config = mini(8 * MB, 256 * MB);
    let (db, fs) = compare_systems(&config, &[0], true).unwrap();
    let db_clean = db.points[0].read_throughput_mb_s.unwrap();
    let fs_clean = fs.points[0].read_throughput_mb_s.unwrap();
    assert!(
        fs_clean > db_clean,
        "clean store: filesystem ({fs_clean:.2} MB/s) should beat the database ({db_clean:.2} MB/s) at 8 MB"
    );
}

/// Figure 2's shape: for large objects the database's fragments/object keeps
/// growing with storage age and ends up well above the filesystem's, which
/// levels off.
#[test]
fn database_fragmentation_grows_and_filesystem_levels_off() {
    let config = mini(2 * MB, 128 * MB);
    let ages = [0u32, 2, 4, 6];
    let (db, fs) = compare_systems(&config, &ages, false).unwrap();

    let db_frag: Vec<f64> = db.points.iter().map(|p| p.fragments_per_object).collect();
    let fs_frag: Vec<f64> = fs.points.iter().map(|p| p.fragments_per_object).collect();

    // Database fragmentation grows monotonically (within tolerance) and does
    // not level off by the end of the run.
    assert!(
        db_frag.windows(2).all(|w| w[1] >= w[0] * 0.9),
        "database curve should rise: {db_frag:?}"
    );
    assert!(
        db_frag.last().unwrap() > &(db_frag[1] * 1.2),
        "database curve should keep growing: {db_frag:?}"
    );
    // Filesystem ends up far below the database.
    assert!(
        fs_frag.last().unwrap() * 2.0 < *db_frag.last().unwrap(),
        "filesystem ({fs_frag:?}) should stay well below the database ({db_frag:?})"
    );
    // Filesystem levels off: the last two checkpoints are within 50% of each
    // other.
    let n = fs_frag.len();
    assert!(
        fs_frag[n - 1] < fs_frag[n - 2] * 1.5 + 1.0,
        "filesystem curve should level off: {fs_frag:?}"
    );
}

/// Figure 4's shape: the database fills a clean volume faster than the
/// filesystem, but its write throughput falls sharply once objects are being
/// replaced.
#[test]
fn database_wins_bulk_load_and_degrades_after() {
    let config = mini(512 * 1024, 96 * MB);
    let (db, fs) = compare_systems(&config, &[0, 2, 4], false).unwrap();
    let db_bulk = db.points[0].write_throughput_mb_s;
    let fs_bulk = fs.points[0].write_throughput_mb_s;
    assert!(
        db_bulk > fs_bulk,
        "bulk load: database {db_bulk:.1} MB/s vs filesystem {fs_bulk:.1} MB/s"
    );

    let db_aged = db.points.last().unwrap().write_throughput_mb_s;
    assert!(
        db_aged < db_bulk / 2.0,
        "the database's write throughput should drop sharply after bulk load ({db_bulk:.1} -> {db_aged:.1})"
    );
}

/// Figure 5's surprise: constant-size objects fragment no better than
/// uniformly distributed sizes with the same mean.
#[test]
fn constant_sizes_fragment_like_uniform_sizes() {
    let volume = 128 * MB;
    let mean = 2 * MB;
    let ages = [0u32, 3];

    let constant = mini(mean, volume);
    let mut uniform = mini(mean, volume);
    uniform.object_size = SizeDistribution::uniform_around(mean);

    for kind in [StoreKind::Database, StoreKind::Filesystem] {
        let constant_run = run_aging_experiment(kind, &constant, &ages, false).unwrap();
        let uniform_run = run_aging_experiment(kind, &uniform, &ages, false).unwrap();
        let constant_aged = constant_run.points.last().unwrap().fragments_per_object;
        let uniform_aged = uniform_run.points.last().unwrap().fragments_per_object;
        assert!(
            constant_aged > 1.2,
            "{kind:?}: constant-size objects must still fragment (got {constant_aged:.2})"
        );
        assert!(
            constant_aged > uniform_aged * 0.4,
            "{kind:?}: constant sizes should not fragment dramatically less than uniform \
             (constant {constant_aged:.2} vs uniform {uniform_aged:.2})"
        );
    }
}

/// Figure 6's free-pool observation: at the same (high) occupancy, a volume
/// with a very small pool of free objects fragments much faster.  The paper
/// makes this point at 90%+ occupancy (Figure 6.3), where the pool is small
/// enough to dominate; at 50% the two volumes behave alike (Section 5.4).
#[test]
fn small_free_pools_degrade_faster() {
    let object = 2 * MB;
    let ages = [0u32, 4];
    let mut tiny = mini(object, 24 * MB); // pool of ~2 free objects at 85%
    tiny.occupancy = 0.85;
    tiny.concurrency = 1; // sequential safe writes: one in-flight copy fits the tiny pool
    tiny.read_sample = Some(4);
    let mut big = mini(object, 192 * MB); // pool of ~13 free objects at 85%
    big.occupancy = 0.85;
    big.concurrency = 1;

    let tiny_run = run_aging_experiment(StoreKind::Filesystem, &tiny, &ages, false).unwrap();
    let big_run = run_aging_experiment(StoreKind::Filesystem, &big, &ages, false).unwrap();
    let tiny_aged = tiny_run.points.last().unwrap().fragments_per_object;
    let big_aged = big_run.points.last().unwrap().fragments_per_object;
    assert!(
        tiny_aged >= big_aged,
        "a small free pool ({tiny_aged:.2}) should fragment at least as much as a large one ({big_aged:.2})"
    );
}

/// The allocation-policy knob threads from `ExperimentConfig` through both
/// stores into their substrates: every policy drives both systems through a
/// full aging run, and for the database the `Native` policy is by definition
/// the lowest-first fit, so `Native` and `Fit(FirstFit)` produce identical
/// trajectories.
#[test]
fn allocation_policy_knob_drives_both_stores() {
    let mut config = mini(MB, 64 * MB);
    config.read_sample = None;
    let ages = [0u32, 2];

    for kind in [StoreKind::Filesystem, StoreKind::Database] {
        let mut aged = Vec::new();
        for policy in AllocationPolicy::ALL {
            let run = run_aging_experiment(
                kind,
                &config.clone().with_allocation_policy(policy),
                &ages,
                false,
            )
            .unwrap();
            assert_eq!(run.points.len(), 2, "{kind:?}/{}", policy.name());
            assert_eq!(run.points[0].objects, config.object_count());
            assert!(
                run.points[1].fragments_per_object >= 1.0,
                "{kind:?}/{}: live objects have at least one fragment",
                policy.name()
            );
            aged.push(run.points[1].fragments_per_object);
        }
        // The knob must actually reach the substrate: across the policy
        // sweep at least two policies age differently.
        assert!(
            aged.iter().any(|f| (f - aged[0]).abs() > 1e-9),
            "{kind:?}: every policy aged identically ({aged:?})"
        );
    }

    let native = run_aging_experiment(
        StoreKind::Database,
        &config
            .clone()
            .with_allocation_policy(AllocationPolicy::Native),
        &ages,
        false,
    )
    .unwrap();
    let first_fit = run_aging_experiment(
        StoreKind::Database,
        &config.with_allocation_policy(AllocationPolicy::Fit(FitPolicy::FirstFit)),
        &ages,
        false,
    )
    .unwrap();
    assert_eq!(
        native.points, first_fit.points,
        "the database's native policy is lowest-first, i.e. first fit"
    );
}

/// The marker-based fragmentation tool agrees with the stores' own extent
/// walks on an aged store of either kind.
#[test]
fn marker_tool_agrees_with_extent_walk_on_aged_stores() {
    let config = mini(MB, 96 * MB);
    for kind in [StoreKind::Filesystem, StoreKind::Database] {
        let mut store = config.build_store(kind).unwrap();
        let mut generator = lorepo::core::WorkloadGenerator::new(config.workload());
        for op in generator.bulk_load() {
            if let lorepo::core::WorkloadOp::Put { key, size } = op {
                store.put(&key.to_string(), size).unwrap();
            }
        }
        for _ in 0..3 {
            let round: Vec<(String, u64)> = generator
                .overwrite_round()
                .into_iter()
                .filter_map(|op| match op {
                    lorepo::core::WorkloadOp::SafeWrite { key, size } => {
                        Some((key.to_string(), size))
                    }
                    _ => None,
                })
                .collect();
            for batch in round.chunks(4) {
                store.safe_write_batch(batch).unwrap();
            }
        }
        let report = analyze_store(store.as_ref()).unwrap();
        let direct = store.fragmentation();
        assert_eq!(report.summary.objects, direct.objects);
        assert!(
            (report.marker_fragments_per_object - direct.fragments_per_object).abs() < 1e-9,
            "{kind:?}: marker tool ({}) vs extent walk ({})",
            report.marker_fragments_per_object,
            direct.fragments_per_object
        );
    }
}

/// Maintenance (the online defragmenter / table rebuild) restores both
/// systems close to a contiguous layout, at a measurable copy cost.
#[test]
fn maintenance_restores_contiguity() {
    let config = mini(MB, 96 * MB);
    for kind in [StoreKind::Filesystem, StoreKind::Database] {
        let mut store = config.build_store(kind).unwrap();
        let mut generator = lorepo::core::WorkloadGenerator::new(config.workload());
        for op in generator.bulk_load() {
            if let lorepo::core::WorkloadOp::Put { key, size } = op {
                store.put(&key.to_string(), size).unwrap();
            }
        }
        for _ in 0..4 {
            let round: Vec<(String, u64)> = generator
                .overwrite_round()
                .into_iter()
                .filter_map(|op| match op {
                    lorepo::core::WorkloadOp::SafeWrite { key, size } => {
                        Some((key.to_string(), size))
                    }
                    _ => None,
                })
                .collect();
            for batch in round.chunks(4) {
                store.safe_write_batch(batch).unwrap();
            }
        }
        let before = store.fragmentation().fragments_per_object;
        let copied = store.maintenance().unwrap();
        let after = store.fragmentation().fragments_per_object;
        assert!(copied > 0, "{kind:?}: an aged store has something to copy");
        assert!(
            after <= before,
            "{kind:?}: maintenance must not increase fragmentation ({before:.2} -> {after:.2})"
        );
        assert!(
            after < 2.0,
            "{kind:?}: maintenance should restore near-contiguity, got {after:.2}"
        );
    }
}

/// The queueing acceptance scenario, open-loop half: against an aged store,
/// p99 read latency is monotone non-decreasing in offered load (same
/// unit-exponential arrival pattern at every rate, so Lindley's recursion
/// applies exactly), and at high load — with well over eight requests in
/// flight — the tail separates from the median by a wide margin.
#[test]
fn open_loop_tail_latency_grows_with_offered_load() {
    let config = mini(MB, 96 * MB);
    for kind in [StoreKind::Filesystem, StoreKind::Database] {
        let mut p99_curve = Vec::new();
        let mut high_load = None;
        for utilisation in [0.3, 0.6, 0.9, 1.2] {
            // Rebuild and age identically for every offered load.
            let mut store = config.build_store(kind).unwrap();
            let mut generator = lorepo::core::WorkloadGenerator::new(config.workload());
            let mut server = StoreServer::new(store.as_mut());
            server
                .run_closed_loop(generator.bulk_load(), 1, SimDuration::ZERO)
                .unwrap();
            for _ in 0..2 {
                server
                    .run_closed_loop(
                        generator.overwrite_round(),
                        config.concurrency,
                        SimDuration::ZERO,
                    )
                    .unwrap();
            }
            let reads: Vec<WorkloadOp> = generator.read_all().into_iter().take(48).collect();
            // Calibrate the spindle's read capacity with a serial pass
            // (reads have no side effects), then offer a fraction of it.
            let serial = server
                .run_closed_loop(reads.clone(), 1, SimDuration::ZERO)
                .unwrap();
            let capacity = 1e3 / LatencySummary::of(&serial).mean_ms.max(1e-6);
            server.reset_queue_stats();
            let completions = server
                .run_open_loop(
                    reads,
                    OpenLoop {
                        ops_per_sec: utilisation * capacity,
                        seed: 1234,
                    },
                )
                .unwrap();
            let summary = LatencySummary::of(&completions);
            p99_curve.push(summary.p99_ms);
            high_load = Some((summary, server.queue_stats()));
        }
        assert!(
            p99_curve.windows(2).all(|w| w[1] >= w[0] - 1e-9),
            "{kind:?}: p99 must be monotone non-decreasing in offered load: {p99_curve:?}"
        );
        let (summary, queue) = high_load.unwrap();
        assert!(
            summary.p99_ms > summary.p50_ms * 1.5,
            "{kind:?}: above capacity the tail must separate from the median \
             (p99 {:.2} ms vs p50 {:.2} ms)",
            summary.p99_ms,
            summary.p50_ms
        );
        assert!(
            queue.max_depth >= 8,
            "{kind:?}: above capacity well over 8 clients' worth of requests queue \
             (saw {})",
            queue.max_depth
        );
    }
}

/// The queueing acceptance scenario, maintenance half: with think-time slack
/// in the workload, `IdleDetect` schedules its background work into the
/// observed gaps and achieves a lower foreground p99 than `FixedBudget` at
/// comparable steady-state fragmentation on at least one store.
#[test]
fn idle_detect_buys_fixed_budget_fragmentation_at_lower_tail_latency() {
    use lorepo::core::MaintenanceConfig;

    let ages = [0u32, 2, 4];
    let mut witnessed = false;
    for kind in [StoreKind::Filesystem, StoreKind::Database] {
        // Three clients with 400 ms think time: utilisation well under 1, so
        // the spindle sees genuine idle gaps between staggered requests.
        let mut base = mini(2 * MB, 128 * MB);
        base.concurrency = 3;
        base.think_time_ms = 400.0;
        let fixed = run_aging_experiment(
            kind,
            &base
                .clone()
                .with_maintenance(MaintenanceConfig::fixed_budget(512).with_server_drive()),
            &ages,
            false,
        )
        .unwrap();
        let idle_detect = run_aging_experiment(
            kind,
            &base
                .clone()
                .with_maintenance(MaintenanceConfig::idle_detect(5.0)),
            &ages,
            false,
        )
        .unwrap();

        let fixed_aged = fixed.points.last().unwrap();
        let detect_aged = idle_detect.points.last().unwrap();
        assert!(
            detect_aged.background_time_s > 0.0,
            "{kind:?}: idle-detect must actually do background work in the gaps"
        );
        assert!(
            fixed_aged.background_time_s > 0.0,
            "{kind:?}: fixed-budget must actually do background work"
        );
        if detect_aged.latency_p99_ms < fixed_aged.latency_p99_ms
            && detect_aged.fragments_per_object <= fixed_aged.fragments_per_object * 1.15
        {
            witnessed = true;
        }
    }
    assert!(
        witnessed,
        "idle-detect should beat fixed-budget's p99 at comparable steady-state \
         fragmentation on at least one store"
    );
}

/// The mixed-sweep acceptance scenario: open-loop read + safe-write arrivals
/// against an aged store show a **write-fraction-dependent hockey-stick
/// shift** — at the same nominal utilisation (calibrated per mix on a twin
/// store) the write-heavy mix's tail sits measurably apart from the
/// pure-read mix's, because the write class rewrites the layout while the
/// measurement runs.  The *direction* of the shift is scale-dependent
/// (downward at this miniature fixture, where open-loop rewrites heal the
/// batch-aged layout; upward at report scale, recorded in EXPERIMENTS.md),
/// so the assertion pins the magnitude, not the sign.
#[test]
fn mixed_sweep_hockey_stick_shifts_with_write_fraction() {
    let config = mini(MB, 96 * MB);
    let (low, high) = (0.3, 0.9);
    for kind in [StoreKind::Filesystem, StoreKind::Database] {
        let mut p99 = std::collections::BTreeMap::new();
        let mut growth = std::collections::BTreeMap::new();
        for write_fraction in [0.0, 0.5] {
            for utilisation in [low, high] {
                let point =
                    measure_mixed_load(kind, &config, 2, write_fraction, utilisation, 48).unwrap();
                let key = (
                    (write_fraction * 100.0) as u32,
                    (utilisation * 100.0) as u32,
                );
                p99.insert(key, point.all.p99_ms);
                growth.insert(key, point.fragments_after - point.fragments_before);
            }
        }
        // The hockey stick: each mix's p99 rises with offered load.
        for write_fraction in [0u32, 50] {
            assert!(
                p99[&(write_fraction, 90)] >= p99[&(write_fraction, 30)],
                "{kind:?}/{write_fraction}% writes: p99 must not improve under load \
                 ({:.1} -> {:.1} ms)",
                p99[&(write_fraction, 30)],
                p99[&(write_fraction, 90)]
            );
        }
        // The shift: at the same nominal utilisation (capacity calibrated
        // per mix on a bit-identical twin store) the write-heavy mix's
        // high-load tail sits measurably apart from the pure-read mix's.
        // At this scale the shift is *downward* on both substrates — the
        // aged store was fragmented by 4-way interleaved overwrite batches,
        // and the sweep's open-loop single-stream rewrites land in fresher
        // runs than the objects they replace — which is itself the
        // fragmentation/measurement interaction: the write class rewrites
        // the layout mid-sweep and the read class observes it.
        let shift = p99[&(50, 90)] / p99[&(0, 90)];
        assert!(
            (shift - 1.0).abs() > 0.02,
            "{kind:?}: the write fraction must shift the high-load tail \
             measurably ({:.1} vs {:.1} ms)",
            p99[&(50, 90)],
            p99[&(0, 90)]
        );
        // The interaction: the write class moves the layout during the
        // measurement; the pure-read sweep cannot.
        assert_eq!(
            growth[&(0, 30)],
            0.0,
            "{kind:?}: reads must not move the layout"
        );
        assert_eq!(
            growth[&(0, 90)],
            0.0,
            "{kind:?}: reads must not move the layout"
        );
        assert!(
            growth[&(50, 90)].abs() > 1e-9,
            "{kind:?}: the write class must move the layout during the sweep"
        );
    }
}

/// The adaptive-frontier acceptance scenario: on **both** substrates the
/// rate-adaptive policy's (fragments/object, foreground latency) operating
/// point lands on or inside the frontier traced by the `FixedBudget` sweep —
/// no fixed budget strictly beats it in both coordinates.  Rate-proportional
/// spending buys fragmentation repair while the store degrades and stops
/// paying once it stabilises, which a fixed budget cannot do: on the
/// database `adaptive(64)` reaches `fixed-budget(1024)`'s steady-state
/// fragmentation at measurably lower foreground latency and ~25% less
/// background I/O.
///
/// The volume is larger than the other e2e fixtures on purpose: below ~100
/// objects the database's free-pool effects make the fixed frontier itself
/// non-monotone (the recorded "small budget worse than idle" pocket), and
/// no budget policy — fixed or adaptive — behaves comparably there.
#[test]
fn adaptive_lands_on_or_inside_the_fixed_budget_frontier() {
    use lorepo::core::MaintenanceConfig;

    let ages = [4u32];
    for kind in [StoreKind::Filesystem, StoreKind::Database] {
        let base = mini(2 * MB, 512 * MB);
        let mut frontier_points = Vec::new();
        for budget in [0u64, 64, 256, 1024] {
            let run = run_aging_experiment(
                kind,
                &base
                    .clone()
                    .with_maintenance(MaintenanceConfig::fixed_budget(budget)),
                &ages,
                false,
            )
            .unwrap();
            let point = run.points.last().unwrap();
            frontier_points.push((point.fragments_per_object, point.foreground_latency_ms));
        }
        let frontier = Series::frontier("fixed-budget", frontier_points);

        let adaptive = run_aging_experiment(
            kind,
            &base
                .clone()
                .with_maintenance(MaintenanceConfig::adaptive(64.0)),
            &ages,
            false,
        )
        .unwrap();
        let point = adaptive.points.last().unwrap();
        assert!(
            frontier.on_or_inside_frontier(
                point.fragments_per_object,
                point.foreground_latency_ms,
                0.02
            ),
            "{kind:?}: adaptive ({:.2} frags, {:.1} ms) is strictly dominated by the \
             fixed-budget frontier {:?}",
            point.fragments_per_object,
            point.foreground_latency_ms,
            frontier.points
        );
    }
}

/// Regression pin for the DB eager-cleanup pathology (the PR 3 findings and
/// the substrate-aware fix): on the database under a gap-filling workload,
/// `IdleDetect` — which reclaims ghosts in every idle gap and feeds the
/// engine's lowest-first reuse — must not beat `SubstrateAware` (ghost
/// release deferred by 8 s of simulated time, which at this fixture spans
/// several overwrite rounds and halves the steady state) on
/// fragments/object at a comparable p99; and under the serial drive the
/// fixed-budget family must stay monotone: small budgets no worse than idle
/// on fragmentation, latency non-decreasing in budget.
#[test]
fn substrate_aware_pins_the_db_eager_cleanup_pathology() {
    use lorepo::core::MaintenanceConfig;

    let ages = [0u32, 2, 4];
    let mut base = mini(2 * MB, 128 * MB);
    base.concurrency = 3;
    base.think_time_ms = 400.0;

    let idle_detect = run_aging_experiment(
        StoreKind::Database,
        &base
            .clone()
            .with_maintenance(MaintenanceConfig::idle_detect(5.0)),
        &ages,
        false,
    )
    .unwrap();
    let substrate_aware = run_aging_experiment(
        StoreKind::Database,
        &base
            .clone()
            .with_maintenance(MaintenanceConfig::substrate_aware(5.0, 8000.0)),
        &ages,
        false,
    )
    .unwrap();

    let id_aged = idle_detect.points.last().unwrap();
    let sa_aged = substrate_aware.points.last().unwrap();
    assert!(
        sa_aged.background_time_s > 0.0,
        "substrate-aware must still do background work in the gaps"
    );
    assert!(
        id_aged.fragments_per_object >= sa_aged.fragments_per_object * 0.95,
        "idle-detect ({:.2} frags) must not beat substrate-aware ({:.2} frags) \
         on the database",
        id_aged.fragments_per_object,
        sa_aged.fragments_per_object
    );
    assert!(
        sa_aged.latency_p99_ms <= id_aged.latency_p99_ms * 1.10,
        "the fragmentation win must come at a comparable p99 \
         ({:.1} vs {:.1} ms)",
        sa_aged.latency_p99_ms,
        id_aged.latency_p99_ms
    );

    // The serial-drive half of the earlier finding: fixed-budget latency is
    // monotone in budget and a small budget is no longer worse than idle.
    // (At the tiny 128 MB fixture the free-pool effects reopen the
    // small-budget pocket for any policy, so this is pinned at the same
    // 512 MB scale as the adaptive frontier.)
    let serial = mini(2 * MB, 512 * MB);
    let mut latencies = Vec::new();
    let mut fragments = Vec::new();
    for budget in [0u64, 64, 256, 1024] {
        let run = run_aging_experiment(
            StoreKind::Database,
            &serial
                .clone()
                .with_maintenance(MaintenanceConfig::fixed_budget(budget)),
            &[4],
            false,
        )
        .unwrap();
        let point = run.points.last().unwrap();
        latencies.push(point.foreground_latency_ms);
        fragments.push(point.fragments_per_object);
    }
    assert!(
        latencies.windows(2).all(|w| w[1] >= w[0] * 0.98),
        "DB foreground latency must stay monotone in budget: {latencies:?}"
    );
    assert!(
        fragments[1] <= fragments[0] * 1.15,
        "budget 64 must stay at least at parity with idle \
         ({:.2} vs idle {:.2} frags)",
        fragments[1],
        fragments[0]
    );
}

/// The placement acceptance scenario, frontier half: placement-aware
/// `SubstrateAware` finally lands **strictly inside** the DB gap-filling
/// frontier — lower steady-state fragments/object than unrestricted
/// `IdleDetect` at a comparable (here: strictly lower) p99.  PR 4 recorded
/// that no amount of ghost deferral could win this frontier because the
/// gap-filling compactor consumed the same large contiguous runs the
/// engine's allocator needed; confining the compactor to the maintenance
/// band is what closes the ROADMAP item.
#[test]
fn placement_aware_substrate_aware_wins_the_db_gap_filling_frontier() {
    use lorepo::core::MaintenanceConfig;

    let ages = [0u32, 2, 4];
    let mut base = mini(2 * MB, 128 * MB);
    base.concurrency = 3;
    base.think_time_ms = 400.0;

    let idle_detect = run_aging_experiment(
        StoreKind::Database,
        &base
            .clone()
            .with_maintenance(MaintenanceConfig::idle_detect(5.0)),
        &ages,
        false,
    )
    .unwrap();
    let placed = run_aging_experiment(
        StoreKind::Database,
        &base
            .clone()
            .with_placement(PlacementPolicy::banded(0.9))
            .with_maintenance(MaintenanceConfig::substrate_aware(5.0, 2000.0)),
        &ages,
        false,
    )
    .unwrap();

    let id_aged = idle_detect.points.last().unwrap();
    let placed_aged = placed.points.last().unwrap();
    assert!(
        placed_aged.background_time_s > 0.0,
        "placement-aware substrate-aware must actually work in the gaps"
    );
    assert!(
        placed_aged.fragments_per_object < id_aged.fragments_per_object * 0.85,
        "placement-aware substrate-aware ({:.2} frags) must clearly beat \
         unrestricted idle-detect ({:.2} frags) on DB steady-state fragmentation",
        placed_aged.fragments_per_object,
        id_aged.fragments_per_object
    );
    assert!(
        placed_aged.latency_p99_ms <= id_aged.latency_p99_ms * 1.05,
        "the frontier win must come at a comparable p99 ({:.1} vs {:.1} ms)",
        placed_aged.latency_p99_ms,
        id_aged.latency_p99_ms
    );
}

/// The placement acceptance scenario, oracle half: an explicit
/// [`PlacementPolicy::Unrestricted`] reproduces the default configuration's
/// layouts bit-identically on both substrates, with the serial maintenance
/// drive exercising the placement-aware compaction paths throughout the run.
/// (The substrate crates additionally pin Unrestricted against hand-rolled
/// replicas of the pre-placement compactor and defragmenter, so the default
/// placement cannot drift from the PR 4 behaviour unnoticed.)
#[test]
fn unrestricted_placement_is_bit_identical_to_the_default_layouts() {
    use lorepo::core::MaintenanceConfig;

    for kind in [StoreKind::Filesystem, StoreKind::Database] {
        let base = mini(MB, 96 * MB).with_maintenance(MaintenanceConfig::fixed_budget(256));
        let explicit = base.clone().with_placement(PlacementPolicy::Unrestricted);
        let (default_store, _) = lorepo::core::age_store(kind, &base, 3).unwrap();
        let (explicit_store, _) = lorepo::core::age_store(kind, &explicit, 3).unwrap();
        assert_eq!(
            default_store.fragmentation(),
            explicit_store.fragmentation(),
            "{kind:?}: summaries must agree"
        );
        assert_eq!(default_store.keys(), explicit_store.keys());
        for key in default_store.keys() {
            assert_eq!(
                default_store.layout_of(&key).unwrap(),
                explicit_store.layout_of(&key).unwrap(),
                "{kind:?}: layout of {key} must be bit-identical"
            );
        }
    }
}

/// The `lor-maint` acceptance scenario: under the `Idle` policy
/// fragments/object grows monotonically with storage age, while the
/// `FixedBudget` and `Threshold` policies hold steady-state fragmentation
/// strictly lower at the price of measurably higher foreground latency (the
/// background I/O is charged to the same simulated spindle).
#[test]
fn maintenance_policies_trade_foreground_latency_for_fragmentation() {
    use lorepo::core::MaintenanceConfig;

    let ages = [0u32, 2, 4, 6];
    for kind in [StoreKind::Filesystem, StoreKind::Database] {
        let base = mini(2 * MB, 128 * MB);
        let idle = run_aging_experiment(
            kind,
            &base.clone().with_maintenance(MaintenanceConfig::idle()),
            &ages,
            false,
        )
        .unwrap();
        let budget = run_aging_experiment(
            kind,
            &base
                .clone()
                .with_maintenance(MaintenanceConfig::fixed_budget(512)),
            &ages,
            false,
        )
        .unwrap();
        let threshold = run_aging_experiment(
            kind,
            &base
                .clone()
                .with_maintenance(MaintenanceConfig::threshold(1.5)),
            &ages,
            false,
        )
        .unwrap();

        // Idle: fragmentation grows monotonically with age (within a small
        // plateau tolerance — the filesystem curve levels off) and never
        // heals.
        let idle_frags: Vec<f64> = idle.points.iter().map(|p| p.fragments_per_object).collect();
        assert!(
            idle_frags.windows(2).all(|w| w[1] >= w[0] * 0.95),
            "{kind:?}: idle fragmentation must grow monotonically: {idle_frags:?}"
        );
        assert!(
            *idle_frags.last().unwrap() > idle_frags[0] + 0.2,
            "{kind:?}: idle fragmentation must actually grow: {idle_frags:?}"
        );
        assert_eq!(
            idle.points.last().unwrap().background_time_s,
            0.0,
            "{kind:?}: idle schedules no background work"
        );

        // Active policies: strictly lower steady-state fragmentation...
        let idle_aged = idle.points.last().unwrap();
        for (name, run) in [("fixed-budget", &budget), ("threshold", &threshold)] {
            let aged = run.points.last().unwrap();
            assert!(
                aged.fragments_per_object < idle_aged.fragments_per_object,
                "{kind:?}/{name}: maintenance must lower steady-state fragmentation \
                 ({} vs idle {})",
                aged.fragments_per_object,
                idle_aged.fragments_per_object
            );
            // ...bought with real background I/O...
            assert!(
                aged.background_time_s > 0.0,
                "{kind:?}/{name}: the scheduler must have worked"
            );
            // ...that shows up as measurably higher foreground latency.
            assert!(
                aged.foreground_latency_ms > idle_aged.foreground_latency_ms * 1.02,
                "{kind:?}/{name}: background maintenance must cost foreground latency \
                 ({:.3} ms vs idle {:.3} ms)",
                aged.foreground_latency_ms,
                idle_aged.foreground_latency_ms
            );
        }
    }
}

/// The log-structured substrate's determinism baseline: two identically
/// configured aging runs (cleaner active) must produce bit-identical stores —
/// same fragmentation summary, same key set, same per-object physical layout.
#[test]
fn log_structured_aging_is_bit_identical_across_runs() {
    use lorepo::core::MaintenanceConfig;

    let config = mini(MB, 96 * MB).with_maintenance(MaintenanceConfig::fixed_budget(64));
    let (first, _) = lorepo::core::age_store(StoreKind::LogStructured, &config, 3).unwrap();
    let (second, _) = lorepo::core::age_store(StoreKind::LogStructured, &config, 3).unwrap();
    assert_eq!(
        first.fragmentation(),
        second.fragmentation(),
        "summaries must agree"
    );
    assert_eq!(first.keys(), second.keys());
    for key in first.keys() {
        assert_eq!(
            first.layout_of(&key).unwrap(),
            second.layout_of(&key).unwrap(),
            "layout of {key} must be bit-identical"
        );
    }
}

/// The segment cleaner's acceptance scenario, idle half: with no background
/// cleaning, an aged log degrades monotonically under a skewed rewrite
/// workload — mean segment utilization falls (cold survivors strand dead
/// bytes in sealed segments) and fragments/object rises (allocation-pressure
/// vacates scatter the survivors' extents instead of rewriting objects
/// whole).  Uniform full-population overwrites would hide both effects:
/// they leave victims fully dead, reclaimed for free.
#[test]
fn uncleaned_log_utilization_and_fragmentation_degrade_with_age() {
    use lorepo::core::ObjectStore;

    let mut base = mini(MB, 96 * MB);
    base.object_size = SizeDistribution::uniform_around(MB);
    let mut store = lorepo::core::LogObjectStore::new(96 * MB).unwrap();
    let mut generator = lorepo::core::WorkloadGenerator::new(base.workload());
    for op in generator.bulk_load() {
        if let WorkloadOp::Put { key, size } = op {
            store.put(&key.to_string(), size).unwrap();
        }
    }
    let mut utilization = vec![store.log().segment_stats().mean_utilization];
    let mut frags = vec![store.fragmentation().fragments_per_object];
    for _ in 0..16 {
        for op in generator.zipf_safe_write_sample(8, 1.0) {
            if let WorkloadOp::SafeWrite { key, size } = op {
                store.safe_write(&key.to_string(), size).unwrap();
            }
        }
        utilization.push(store.log().segment_stats().mean_utilization);
        frags.push(store.fragmentation().fragments_per_object);
    }
    assert!(
        utilization.windows(2).all(|w| w[1] <= w[0] * 1.05),
        "utilization must fall monotonically: {utilization:?}"
    );
    assert!(
        *utilization.last().unwrap() < utilization[0] * 0.9,
        "utilization must actually degrade: {utilization:?}"
    );
    assert!(
        frags.windows(2).all(|w| w[1] >= w[0] * 0.95),
        "fragmentation must rise monotonically: {frags:?}"
    );
    assert!(
        *frags.last().unwrap() > frags[0] + 0.2,
        "fragmentation must actually grow: {frags:?}"
    );
}

/// The segment cleaner's acceptance scenario, active half: driving the
/// cleaner as budgeted maintenance holds steady-state fragments/object
/// strictly below the idle log's, bought with real background copying that
/// shows up as a measurably higher foreground p99.
#[test]
fn log_cleaner_trades_foreground_tail_latency_for_fragmentation() {
    use lorepo::core::{
        LogObjectStore, LogStoreConfig, MaintenanceConfig, ObjectStore, WorkloadGenerator,
    };

    let mut base = mini(MB, 96 * MB);
    base.object_size = SizeDistribution::uniform_around(MB);
    let run = |maintenance: Option<MaintenanceConfig>| {
        let mut config = LogStoreConfig::new(96 * MB);
        config.maintenance = maintenance;
        let mut store = LogObjectStore::with_config(config).unwrap();
        let mut generator = WorkloadGenerator::new(base.workload());
        let mut server = StoreServer::new(&mut store);
        server
            .run_closed_loop(generator.bulk_load(), 1, SimDuration::ZERO)
            .unwrap();
        let mut p99_ms = 0.0;
        for _ in 0..8 {
            let round = generator.zipf_safe_write_sample(48, 1.0);
            let completions = server.run_closed_loop(round, 2, SimDuration::ZERO).unwrap();
            p99_ms = LatencySummary::of(&completions).p99_ms;
        }
        drop(server);
        let frags = store.fragmentation().fragments_per_object;
        let copied = store.log().cleaner_totals().bytes_copied;
        (frags, p99_ms, copied)
    };

    let (idle_frags, idle_p99, idle_copied) = run(None);
    let (cleaned_frags, cleaned_p99, cleaned_copied) =
        run(Some(MaintenanceConfig::fixed_budget(64)));

    assert_eq!(idle_copied, 0, "without a scheduler the cleaner never runs");
    assert!(
        cleaned_copied > 0,
        "the budgeted cleaner must have copied something"
    );
    assert!(
        cleaned_frags < idle_frags,
        "cleaning must lower steady-state fragmentation \
         ({cleaned_frags:.3} vs idle {idle_frags:.3})"
    );
    assert!(
        cleaned_p99 > idle_p99 * 1.02,
        "cleaning must cost foreground tail latency \
         (p99 {cleaned_p99:.3} ms vs idle {idle_p99:.3} ms)"
    );
}

/// Rosenblum's cost-benefit victim selection beats greedy at equal cleaning
/// budget under a skewed rewrite workload: age makes cold, moderately-dead
/// segments worth compacting, so long-lived objects end up less fragmented
/// than under lowest-utilization-first selection.  The margin only exists
/// while the budget is scarce — a lavish budget cleans everything under
/// either selector — so the budget here is deliberately tight.
#[test]
fn cost_benefit_cleaning_beats_greedy_at_equal_budget() {
    use lorepo::core::lor_logstore::CleanerSelector;
    use lorepo::core::{
        LogObjectStore, LogStoreConfig, MaintenanceConfig, ObjectStore, WorkloadGenerator,
    };

    let build = |selector: CleanerSelector| {
        let mut config = LogStoreConfig::new(96 * MB);
        config.log.selector = selector;
        config.maintenance = Some(MaintenanceConfig::fixed_budget(16));
        LogObjectStore::with_config(config).unwrap()
    };
    let mut cost_benefit = build(CleanerSelector::CostBenefit);
    let mut greedy = build(CleanerSelector::Greedy);

    let mut base = mini(MB, 96 * MB);
    base.object_size = SizeDistribution::uniform_around(MB);
    let mut generator = WorkloadGenerator::new(base.workload());
    let load = generator.bulk_load();
    for store in [&mut cost_benefit, &mut greedy] {
        for op in &load {
            if let WorkloadOp::Put { key, size } = op {
                store.put(&key.to_string(), *size).unwrap();
            }
        }
    }
    // Zipf-skewed rewrites: the hot ranks churn constantly while cold
    // objects rot in place — exactly the population where victim age
    // matters.  Both stores replay the identical op stream, so the cleaning
    // budget spent per foreground op is equal by construction.
    for _ in 0..16 {
        let round = generator.zipf_safe_write_sample(24, 1.0);
        for store in [&mut cost_benefit, &mut greedy] {
            for op in &round {
                if let WorkloadOp::SafeWrite { key, size } = op {
                    store.safe_write(&key.to_string(), *size).unwrap();
                }
            }
        }
    }

    let cb_frags = cost_benefit.fragmentation().fragments_per_object;
    let greedy_frags = greedy.fragmentation().fragments_per_object;
    assert!(
        cb_frags < greedy_frags,
        "cost-benefit must beat greedy on fragments/object at equal budget \
         ({cb_frags:.3} vs {greedy_frags:.3})"
    );
}
