//! Workspace umbrella crate for the CIDR 2007 *Fragmentation in Large Object
//! Repositories* reproduction.
//!
//! The actual functionality lives in the member crates; this package exists to
//! host the runnable examples (`examples/`) and the cross-crate integration
//! tests (`tests/`).  It re-exports the member crates under short names so the
//! examples read naturally.

pub use lor_alloc as alloc;
pub use lor_blobkit as blobkit;
pub use lor_core as core;
pub use lor_disksim as disksim;
pub use lor_fskit as fskit;
pub use lor_logstore as logstore;
pub use lor_maint as maint;
pub use lor_obs as obs;
pub use lor_shard as shard;
