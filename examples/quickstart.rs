//! Quickstart: store objects in both systems, age them, and see where the
//! break-even point lies.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use lorepo::core::{
    compare_systems, DbObjectStore, ExperimentConfig, FsObjectStore, ObjectStore, SizeDistribution,
    StoreKind,
};

fn main() {
    const MB: u64 = 1 << 20;

    // 1. The get/put interface, by hand: a small repository on each system.
    let mut fs = FsObjectStore::new(256 * MB).expect("filesystem store");
    let mut db = DbObjectStore::new(256 * MB).expect("database store");
    for store in [
        &mut fs as &mut dyn ObjectStore,
        &mut db as &mut dyn ObjectStore,
    ] {
        store.put("report.pdf", 512 * 1024).expect("put");
        store
            .safe_write("report.pdf", 600 * 1024)
            .expect("safe write");
        let read = store.get("report.pdf").expect("get");
        println!(
            "{:<10} read {:>7} bytes in {} ({} fragment(s))",
            store.kind().label(),
            read.payload_bytes,
            read.total_time(),
            read.fragments
        );
    }

    // 2. The paper's experiment loop, miniature edition: 512 KB objects on a
    //    128 MB volume, aged to storage age 4.
    let mut config = ExperimentConfig::paper_default(SizeDistribution::Constant(512 * 1024));
    config.volume_bytes = 128 * MB;
    config.read_sample = Some(32);
    let (database, filesystem) = compare_systems(&config, &[0, 2, 4], true).expect("experiment");

    println!("\nstorage age -> read throughput (simulated MB/s) and fragments/object");
    for (db_point, fs_point) in database.points.iter().zip(&filesystem.points) {
        println!(
            "  age {:>4.1}:  database {:>7.2} MB/s ({:>5.2} frag/obj)   filesystem {:>7.2} MB/s ({:>5.2} frag/obj)",
            db_point.storage_age,
            db_point.read_throughput_mb_s.unwrap_or(0.0),
            db_point.fragments_per_object,
            fs_point.read_throughput_mb_s.unwrap_or(0.0),
            fs_point.fragments_per_object,
        );
    }

    let db_aged = database.points.last().expect("points");
    let fs_aged = filesystem.points.last().expect("points");
    let winner = if db_aged.read_throughput_mb_s > fs_aged.read_throughput_mb_s {
        StoreKind::Database
    } else {
        StoreKind::Filesystem
    };
    println!("\nafter aging, the better home for 512 KB objects here is: {winner}");
}
