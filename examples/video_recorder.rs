//! A personal video recorder: the other application class the paper's
//! introduction cites — large, transient objects that are continuously
//! allocated and deleted (recordings expire, new ones take their place).
//!
//! The example drives both stores with the same recording schedule and shows
//! how read (playback) throughput degrades as the store ages, and how the
//! paper's proposed interface extension — declaring a recording's size up
//! front — keeps the filesystem contiguous.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example video_recorder
//! ```

use lorepo::core::lor_disksim::throughput_mb_per_sec;
use lorepo::core::{DbObjectStore, FsObjectStore, ObjectStore, SizeDistribution, StoreKind};
use lorepo::fskit::{Volume, VolumeConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

const MB: u64 = 1 << 20;
const CAPACITY: u64 = 4_000 * MB;
const RECORDING_MEAN: u64 = 64 * MB;
const RETAINED: usize = 28; // recordings kept before the oldest expires

fn playback_throughput(store: &mut dyn ObjectStore) -> f64 {
    store.reset_measurements();
    let mut bytes = 0;
    for key in store.keys() {
        bytes += store.get(&key).expect("playback").payload_bytes;
    }
    throughput_mb_per_sec(bytes, store.elapsed())
}

fn run(store: &mut dyn ObjectStore, weeks: usize) {
    let sizes = SizeDistribution::uniform_around(RECORDING_MEAN);
    let mut rng = StdRng::seed_from_u64(7);
    let mut next_id = 0u64;
    let mut live: Vec<String> = Vec::new();

    for _ in 0..weeks {
        // Seven new recordings a week; the oldest expire to make room.
        for _ in 0..7 {
            while live.len() >= RETAINED {
                let oldest = live.remove(0);
                store.delete(&oldest).expect("expire recording");
            }
            let key = format!("recording-{next_id:06}.ts");
            next_id += 1;
            store.put(&key, sizes.sample(&mut rng)).expect("record");
            live.push(key);
        }
    }

    let summary = store.fragmentation();
    println!(
        "{:<10}  {:>3} recordings kept  {:>6.2} fragments/recording  playback {:>7.1} simulated MB/s",
        store.kind().label(),
        store.object_count(),
        summary.fragments_per_object,
        playback_throughput(store),
    );
}

fn main() {
    println!(
        "personal video recorder: ~{}-MB recordings, {RETAINED} retained, one year of churn\n",
        RECORDING_MEAN / MB
    );
    let weeks = 52;
    let mut fs = FsObjectStore::new(CAPACITY).expect("volume");
    run(&mut fs, weeks);
    let mut db = DbObjectStore::new(CAPACITY).expect("data file");
    run(&mut db, weeks);
    let _ = StoreKind::Filesystem;

    // The paper's proposed fix (Section 6): let the application declare the
    // final size when the recording starts.  The raw fskit API exposes it.
    let mut volume = Volume::format(VolumeConfig::new(CAPACITY)).expect("volume");
    let sizes = SizeDistribution::uniform_around(RECORDING_MEAN);
    let mut rng = StdRng::seed_from_u64(7);
    let mut live: Vec<String> = Vec::new();
    for next_id in 0..weeks * 7 {
        while live.len() >= RETAINED {
            volume.delete_by_name(&live.remove(0)).expect("expire");
        }
        let key = format!("recording-{next_id:06}.ts");
        volume
            .write_file_preallocated(&key, sizes.sample(&mut rng), 64 * 1024)
            .expect("record with declared size");
        live.push(key);
    }
    println!(
        "\nwith the paper's proposed 'declare the size up front' interface, the filesystem stays at {:.2} fragments/recording",
        volume.fragmentation().fragments_per_object
    );
}
