//! A photo-sharing service, the workload the paper's introduction motivates:
//! users upload albums, replace edited versions with safe writes, and delete
//! whole albums at once.  The example shows how fragmentation builds up in
//! both storage designs and what running maintenance buys back.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example photo_sharing
//! ```

use lorepo::core::{DbObjectStore, FsObjectStore, LogObjectStore, ObjectStore, StoreKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const KB: u64 = 1 << 10;
const MB: u64 = 1 << 20;
const ALBUMS: usize = 24;
const PHOTOS_PER_ALBUM: usize = 12;

fn run(store: &mut dyn ObjectStore, rng: &mut StdRng) {
    // Upload season: albums of ~1 MB photos arrive one after another.
    for album in 0..ALBUMS {
        for photo in 0..PHOTOS_PER_ALBUM {
            let size = rng.gen_range(512 * KB..=(2 * MB));
            store
                .put(&format!("album-{album:03}/photo-{photo:03}.jpg"), size)
                .expect("upload");
        }
    }

    // Editing season: users re-upload edited photos (safe writes) and some
    // albums are deleted as a group — the structured deallocation pattern the
    // paper calls out.
    for round in 0..6 {
        for album in 0..ALBUMS {
            if (album + round) % 5 == 0 {
                for photo in 0..PHOTOS_PER_ALBUM {
                    let key = format!("album-{album:03}/photo-{photo:03}.jpg");
                    if store.contains(&key) {
                        store.delete(&key).expect("delete");
                    }
                }
            } else {
                for photo in 0..PHOTOS_PER_ALBUM {
                    let key = format!("album-{album:03}/photo-{photo:03}.jpg");
                    if store.contains(&key) {
                        let size = rng.gen_range(512 * KB..=(2 * MB));
                        store.safe_write(&key, size).expect("edit");
                    }
                }
            }
        }
        // Deleted albums are re-uploaded by new users.
        for album in 0..ALBUMS {
            for photo in 0..PHOTOS_PER_ALBUM {
                let key = format!("album-{album:03}/photo-{photo:03}.jpg");
                if !store.contains(&key) {
                    let size = rng.gen_range(512 * KB..=(2 * MB));
                    store.put(&key, size).expect("re-upload");
                }
            }
        }
    }

    let before = store.fragmentation();
    let copied = store.maintenance().expect("maintenance");
    let after = store.fragmentation();
    println!(
        "{:<10}  {:>4} photos  {:>6.2} -> {:>5.2} fragments/photo after maintenance ({} MB copied)",
        store.kind().label(),
        store.object_count(),
        before.fragments_per_object,
        after.fragments_per_object,
        copied / MB,
    );
}

fn main() {
    println!(
        "photo-sharing service: {ALBUMS} albums x {PHOTOS_PER_ALBUM} photos, six editing seasons\n"
    );
    for kind in [
        StoreKind::Filesystem,
        StoreKind::Database,
        StoreKind::LogStructured,
    ] {
        let mut rng = StdRng::seed_from_u64(2007);
        match kind {
            StoreKind::Filesystem => {
                let mut store = FsObjectStore::new(2_000 * MB).expect("volume");
                run(&mut store, &mut rng);
            }
            StoreKind::Database => {
                let mut store = DbObjectStore::new(2_000 * MB).expect("data file");
                run(&mut store, &mut rng);
            }
            StoreKind::LogStructured => {
                let mut store = LogObjectStore::new(2_000 * MB).expect("log");
                run(&mut store, &mut rng);
            }
        }
    }
    println!("\nThe filesystem ages more gracefully; the database needs its table rebuilt.");
}
